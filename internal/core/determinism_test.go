package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/obsv"
	"scalesim/internal/topology"
)

// goldenLayer mirrors the fixed scenario of internal/systolic's golden
// trace tests: a 4x4 conv layer on a 3x3 array.
func goldenLayer() topology.Layer {
	return topology.Layer{Name: "golden", IfmapH: 5, IfmapW: 4, FilterH: 2,
		FilterW: 2, Channels: 2, NumFilters: 3, Stride: 1}
}

// goldenSection extracts one "# <stream>" section body from a golden file
// written by internal/systolic's golden test.
func goldenSection(t *testing.T, data []byte, stream string) []byte {
	t.Helper()
	marker := []byte("# " + stream + "\n")
	i := bytes.Index(data, marker)
	if i < 0 {
		t.Fatalf("golden file has no section %q", stream)
	}
	body := data[i+len(marker):]
	if j := bytes.Index(body, []byte("# ")); j >= 0 {
		body = body[:j]
	}
	return body
}

// TestGoldenTraceParity runs the golden layer through the full core
// pipeline — engine scheduler, sink registry, CSV trace factory — at
// workers 1 and 4 and checks that every SRAM trace file is byte-identical
// to the corresponding section of internal/systolic's checked-in goldens.
// This pins the whole refactored execution path, not just the array model.
func TestGoldenTraceParity(t *testing.T) {
	sections := map[string]string{
		"sram_read_ifmap":  "ifmap_read",
		"sram_read_filter": "filter_read",
		"sram_write_ofmap": "ofmap_write",
	}
	topo := topology.Topology{Name: "golden", Layers: []topology.Layer{goldenLayer()}}
	for _, df := range config.Dataflows {
		golden, err := os.ReadFile(filepath.Join("..", "systolic", "testdata", "golden_"+df.String()+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			dir := t.TempDir()
			cfg := config.New().WithArray(3, 3).WithDataflow(df)
			sim, err := New(cfg, Options{TraceDir: dir, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Simulate(topo); err != nil {
				t.Fatal(err)
			}
			for stream, section := range sections {
				name := fmt.Sprintf("%s_golden_%s.csv", cfg.RunName, stream)
				got, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					t.Fatal(err)
				}
				if want := goldenSection(t, golden, section); !bytes.Equal(got, want) {
					t.Errorf("%s workers=%d: %s differs from golden section %s",
						df, workers, name, section)
				}
			}
		}
	}
}

// TestTraceFilesDeterministic simulates TinyNet with full tracing at
// workers 1 and 4 and requires byte-identical trace files and equal
// aggregates — the engine's determinism guarantee, end to end.
func TestTraceFilesDeterministic(t *testing.T) {
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)

	type run struct {
		dir   string
		files map[string][]byte
	}
	runs := make(map[int]run)
	var results []RunResult
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		sim, err := New(cfg, Options{TraceDir: dir, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Simulate(topo)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string][]byte, len(entries))
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		runs[workers] = run{dir: dir, files: files}
	}

	seq, par := runs[1], runs[4]
	if len(par.files) != len(seq.files) || len(seq.files) != 5*len(topo.Layers) {
		t.Fatalf("trace file counts differ: workers=1 wrote %d, workers=4 wrote %d, want %d",
			len(seq.files), len(par.files), 5*len(topo.Layers))
	}
	for name, want := range seq.files {
		got, ok := par.files[name]
		if !ok {
			t.Errorf("workers=4 missing trace file %s", name)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("trace file %s differs between workers=1 and workers=4", name)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("aggregates differ between workers=1 and workers=4")
	}
}

// TestTraceDeterminismWithMetrics pins the instrumentation contract:
// attaching a metrics recorder must not change a single byte of trace
// output or any aggregate. TinyNet runs traced at workers=4 with and
// without a recorder; files and results must match exactly, and the
// instrumented run must still produce a valid manifest.
func TestTraceDeterminismWithMetrics(t *testing.T) {
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)

	type run struct {
		files map[string][]byte
		res   RunResult
	}
	var runs []run
	var rec *obsv.Recorder
	for _, instrument := range []bool{false, true} {
		dir := t.TempDir()
		opt := Options{TraceDir: dir, Workers: 4}
		if instrument {
			rec = obsv.NewRecorder()
			opt.Obs = rec
		}
		sim, err := New(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Simulate(topo)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string][]byte, len(entries))
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		runs = append(runs, run{files: files, res: res})
		if instrument {
			m := sim.Manifest(res)
			if err := m.Validate(); err != nil {
				t.Errorf("instrumented run manifest invalid: %v", err)
			}
			if len(m.Layers) != len(topo.Layers) {
				t.Errorf("manifest has %d layers, want %d", len(m.Layers), len(topo.Layers))
			}
		}
	}

	plain, instrumented := runs[0], runs[1]
	if len(plain.files) != len(instrumented.files) {
		t.Fatalf("trace file counts differ: plain %d, instrumented %d",
			len(plain.files), len(instrumented.files))
	}
	for name, want := range plain.files {
		got, ok := instrumented.files[name]
		if !ok {
			t.Errorf("instrumented run missing trace file %s", name)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("trace file %s differs with metrics recorder attached", name)
		}
	}
	if !reflect.DeepEqual(plain.res, instrumented.res) {
		t.Errorf("aggregates differ with metrics recorder attached")
	}
}

// TestResNet50WorkersEquivalence is the acceptance check of the engine
// refactor at full scale: the built-in ResNet50 produces identical results
// at workers=1 and workers=GOMAXPROCS-or-more.
func TestResNet50WorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full ResNet50 simulations; skipped in -short")
	}
	topo := topology.ResNet50()
	var results []RunResult
	for _, workers := range []int{1, 8} {
		sim, err := New(config.New(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Simulate(topo)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("ResNet50 aggregates differ between workers=1 and workers=8")
	}
}
