package core

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/dram"
	"scalesim/internal/energy"
	"scalesim/internal/engine"
	"scalesim/internal/memory"
	"scalesim/internal/systolic"
	"scalesim/internal/topology"
	"scalesim/internal/trace"
)

func newSim(t *testing.T, cfg config.Config, opt Options) *Simulator {
	t.Helper()
	s, err := New(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(config.New().WithArray(0, 1), Options{}); err == nil {
		t.Error("accepted invalid config")
	}
	if _, err := New(config.New(), Options{Energy: energy.Model{MACCycle: -1}}); err == nil {
		t.Error("accepted invalid energy model")
	}
	if _, err := New(config.New(), Options{DRAM: &dram.Config{}}); err == nil {
		t.Error("accepted invalid dram config")
	}
	s := newSim(t, config.New(), Options{})
	if s.Config().ArrayHeight != config.DefaultArrayHeight {
		t.Error("Config() lost values")
	}
}

func TestSimulateLayerConsistency(t *testing.T) {
	cfg := config.New().WithArray(8, 8).WithSRAM(4, 4, 2)
	s := newSim(t, cfg, Options{})
	l := topology.TinyNet().Layers[0]
	lr, err := s.SimulateLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	want, err := systolic.Estimate(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Compute.Cycles != want.Cycles {
		t.Errorf("Cycles = %d, want %d", lr.Compute.Cycles, want.Cycles)
	}
	if lr.Memory.IfmapSRAMReads != want.IfmapReads {
		t.Errorf("IfmapSRAMReads = %d, want %d", lr.Memory.IfmapSRAMReads, want.IfmapReads)
	}
	// All outputs eventually reach DRAM (OS dataflow writes each once).
	if lr.Memory.OfmapDRAMWrites != l.OfmapWords() {
		t.Errorf("OfmapDRAMWrites = %d, want %d", lr.Memory.OfmapDRAMWrites, l.OfmapWords())
	}
	// DRAM reads at least cover each distinct input/filter element once.
	if lr.Memory.IfmapDRAMReads < l.IfmapWords() {
		t.Errorf("IfmapDRAMReads = %d < %d distinct words", lr.Memory.IfmapDRAMReads, l.IfmapWords())
	}
	if lr.Memory.FilterDRAMReads < l.FilterWords() {
		t.Errorf("FilterDRAMReads = %d < %d", lr.Memory.FilterDRAMReads, l.FilterWords())
	}
	if lr.Energy.Total() <= 0 {
		t.Error("non-positive energy")
	}
	if lr.DRAMStats != nil {
		t.Error("DRAMStats set without a DRAM model")
	}
}

func TestSimulateTopology(t *testing.T) {
	cfg := config.New().WithArray(8, 8).WithSRAM(4, 4, 2)
	s := newSim(t, cfg, Options{})
	topo := topology.TinyNet()
	run, err := s.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Layers) != len(topo.Layers) {
		t.Fatalf("layers = %d", len(run.Layers))
	}
	var cycles, macs int64
	for _, lr := range run.Layers {
		cycles += lr.Compute.Cycles
		macs += lr.Compute.MACs
	}
	if run.TotalCycles != cycles || run.TotalMACs != macs {
		t.Errorf("totals %d/%d, want %d/%d", run.TotalCycles, run.TotalMACs, cycles, macs)
	}
	if run.TotalMACs != topo.TotalMACOps() {
		t.Errorf("TotalMACs = %d, want %d", run.TotalMACs, topo.TotalMACOps())
	}
	if run.AvgBandwidth() <= 0 {
		t.Error("AvgBandwidth <= 0")
	}
	if run.DRAMReads() <= 0 || run.DRAMWrites() <= 0 {
		t.Error("DRAM totals not positive")
	}
	if got := run.TotalEnergy.Total(); got <= 0 {
		t.Error("TotalEnergy <= 0")
	}

	bad := topology.Topology{Name: "bad"}
	if _, err := s.Simulate(bad); err == nil {
		t.Error("accepted empty topology")
	}
	badLayer := topology.Topology{Name: "b", Layers: []topology.Layer{{Name: "x"}}}
	if _, err := s.Simulate(badLayer); err == nil {
		t.Error("accepted invalid layer")
	}
}

func TestTraceFilesWritten(t *testing.T) {
	dir := t.TempDir()
	cfg := config.New().WithArray(4, 4).WithSRAM(1, 1, 1)
	cfg.RunName = "run/1" // exercises sanitization
	s := newSim(t, cfg, Options{TraceDir: dir})
	l := topology.TinyNet().Layers[0]
	lr, err := s.SimulateLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	streams := []string{
		"sram_read_ifmap", "sram_read_filter", "sram_write_ofmap",
		"dram_read", "dram_write",
	}
	for _, stream := range streams {
		path := filepath.Join(dir, "run_1_conv1_"+stream+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", stream, err)
		}
		if len(data) == 0 {
			t.Errorf("%s: empty trace", stream)
		}
	}
	// The SRAM read trace replays to the same access count.
	f, err := os.Open(filepath.Join(dir, "run_1_conv1_sram_read_ifmap.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.ParseCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accesses() != lr.Memory.IfmapSRAMReads {
		t.Errorf("trace accesses %d != report %d", rec.Accesses(), lr.Memory.IfmapSRAMReads)
	}
}

func TestDRAMModelIntegration(t *testing.T) {
	cfgDram := dram.DDR3()
	cfg := config.New().WithArray(8, 8).WithSRAM(2, 2, 1)
	s := newSim(t, cfg, Options{DRAM: &cfgDram})
	lr, err := s.SimulateLayer(topology.TinyNet().Layers[1])
	if err != nil {
		t.Fatal(err)
	}
	if lr.DRAMStats == nil {
		t.Fatal("DRAMStats missing")
	}
	if lr.DRAMStats.Requests != lr.Memory.DRAMAccesses() {
		t.Errorf("DRAM model saw %d requests, interface moved %d words",
			lr.DRAMStats.Requests, lr.Memory.DRAMAccesses())
	}
	if lr.DRAMStats.AvgLatency() <= 0 {
		t.Error("DRAM latency not positive")
	}
}

func TestTraceDirFailure(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "file")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newSim(t, config.New().WithArray(4, 4), Options{TraceDir: filepath.Join(blocked, "sub")})
	if _, err := s.SimulateLayer(topology.TinyNet().Layers[0]); err == nil {
		t.Error("SimulateLayer succeeded with unusable trace dir")
	}
}

// TestSimulateWorkersEquivalence: any worker count yields the exact
// RunResult of the sequential run, including per-layer start offsets.
func TestSimulateWorkersEquivalence(t *testing.T) {
	cfg := config.New().WithArray(8, 8).WithSRAM(4, 4, 2)
	topo := topology.TinyNet()
	seq, err := newSim(t, cfg, Options{Workers: 1}).Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i, lr := range seq.Layers {
		if lr.StartCycle != want {
			t.Errorf("layer %d StartCycle = %d, want %d", i, lr.StartCycle, want)
		}
		want += lr.Compute.Cycles
	}
	for _, workers := range []int{0, 2, 4, 16} {
		par, err := newSim(t, cfg, Options{Workers: workers}).Simulate(topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: RunResult differs from sequential run", workers)
		}
	}
}

// TestSharedConsumerSerializes: a caller-supplied shared DRAM consumer
// forces sequential execution unless Workers is set explicitly.
func TestSharedConsumerSerializes(t *testing.T) {
	rec := &trace.Recorder{}
	opt := Options{Memory: memory.Options{DRAMRead: rec}}
	s := newSim(t, config.New().WithArray(4, 4).WithSRAM(1, 1, 1), opt)
	if got := s.workers(); got != 1 {
		t.Errorf("workers() = %d with a shared consumer, want 1", got)
	}
	opt.Workers = 4
	if got := newSim(t, s.cfg, opt).workers(); got != 4 {
		t.Error("explicit Workers not honoured")
	}
	if got := newSim(t, s.cfg, Options{}).workers(); got != 0 {
		t.Errorf("workers() = %d without shared consumers, want 0 (GOMAXPROCS)", got)
	}
	// The shared consumer still receives the layer's DRAM reads.
	lr, err := s.SimulateLayer(topology.TinyNet().Layers[0])
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accesses() != lr.Memory.DRAMReads() {
		t.Errorf("shared consumer saw %d reads, report says %d", rec.Accesses(), lr.Memory.DRAMReads())
	}
}

// TestCustomSinkFactory: caller-supplied factories receive per-layer jobs
// and fresh consumers.
func TestCustomSinkFactory(t *testing.T) {
	type tap struct {
		job engine.Job
		rec *trace.Recorder
	}
	var mu sync.Mutex
	var taps []tap
	opt := Options{Sinks: engine.Registry{
		func(job engine.Job, set *engine.SinkSet) error {
			rec := &trace.Recorder{}
			set.Attach(engine.SRAMWriteOfmap, rec)
			mu.Lock()
			taps = append(taps, tap{job, rec})
			mu.Unlock()
			return nil
		},
	}, Workers: 2}
	s := newSim(t, config.New().WithArray(8, 8).WithSRAM(4, 4, 2), opt)
	topo := topology.TinyNet()
	run, err := s.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != len(topo.Layers) {
		t.Fatalf("factory ran %d times, want %d", len(taps), len(topo.Layers))
	}
	for _, tp := range taps {
		if tp.job.Layer == "" {
			t.Error("factory job missing layer name")
		}
		want := run.Layers[tp.job.Index].Memory.OfmapSRAMWrites
		if tp.rec.Accesses() != want {
			t.Errorf("layer %d sink saw %d writes, want %d", tp.job.Index, tp.rec.Accesses(), want)
		}
	}
}

func TestAvgBandwidthZeroCycles(t *testing.T) {
	r := RunResult{Config: config.New()}
	if r.AvgBandwidth() != 0 {
		t.Error("zero-cycle AvgBandwidth != 0")
	}
}

// TestLanguageModelLayer runs a Table IV GEMM end to end as a smoke test of
// the full stack at a realistic (small) scale.
func TestLanguageModelLayer(t *testing.T) {
	if testing.Short() {
		t.Skip("full GEMM layer in -short mode")
	}
	topo := topology.LanguageModels()
	l, _ := topo.Layer("TF1") // 84 x 4096 x 1024
	cfg := config.New().WithArray(32, 32).WithSRAM(64, 64, 32)
	s := newSim(t, cfg, Options{})
	lr, err := s.SimulateLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := systolic.Estimate(l, cfg)
	if lr.Compute.Cycles != want.Cycles {
		t.Errorf("Cycles = %d, want %d", lr.Compute.Cycles, want.Cycles)
	}
	if lr.Memory.AvgTotalBW() <= 0 {
		t.Error("no bandwidth measured")
	}
}

func TestBoundedBandwidthStalls(t *testing.T) {
	cfg := config.New().WithArray(8, 8).WithSRAM(2, 2, 1)
	l := topology.TinyNet().Layers[1]

	// Unbounded link: no stall accounting.
	free := newSim(t, cfg, Options{})
	lrFree, err := free.SimulateLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	if lrFree.StallCycles != 0 || lrFree.StalledCycles() != lrFree.Compute.Cycles {
		t.Errorf("unbounded link reported stalls: %d", lrFree.StallCycles)
	}

	// A very fast bounded link: still no stalls.
	fast := newSim(t, cfg, Options{DRAMBandwidth: 1e9})
	lrFast, err := fast.SimulateLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	if lrFast.StallCycles != 0 {
		t.Errorf("fast link stalled %d cycles", lrFast.StallCycles)
	}

	// A link much narrower than the layer's demand must stall, and the
	// stalled runtime must cover the time to move all traffic.
	demand := float64(lrFree.Memory.DRAMAccesses()) / float64(lrFree.Compute.Cycles)
	narrowBW := demand / 4
	narrow := newSim(t, cfg, Options{DRAMBandwidth: narrowBW})
	lrNarrow, err := narrow.SimulateLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	if lrNarrow.StallCycles <= 0 {
		t.Fatalf("narrow link (%.2f w/c vs %.2f demand) did not stall", narrowBW, demand)
	}
	minTime := float64(lrNarrow.Memory.DRAMAccesses()) / narrowBW
	if float64(lrNarrow.StalledCycles()) < minTime-1 {
		t.Errorf("stalled runtime %d below link-limited time %.0f", lrNarrow.StalledCycles(), minTime)
	}

	// Stalls are monotone in bandwidth.
	wider := newSim(t, cfg, Options{DRAMBandwidth: narrowBW * 2})
	lrWider, err := wider.SimulateLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	if lrWider.StallCycles > lrNarrow.StallCycles {
		t.Errorf("stalls rose with bandwidth: %d > %d", lrWider.StallCycles, lrNarrow.StallCycles)
	}
}

func TestNegativeBandwidthRejected(t *testing.T) {
	if _, err := New(config.New(), Options{DRAMBandwidth: -1}); err == nil {
		t.Error("negative bandwidth accepted")
	}
}
