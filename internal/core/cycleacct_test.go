package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/obsv/cycleacct"
	"scalesim/internal/simcache"
	"scalesim/internal/topology"
)

// checkRunLedgers asserts the cycle-accounting invariant on every layer of
// a run and on the rolled-up report: ledgers exist, their books close
// (sum(bins) == Total == StalledCycles), the dram_bw_stall bin equals the
// stall analyzer's answer, and the report re-validates.
func checkRunLedgers(t *testing.T, s *Simulator, res RunResult) *cycleacct.Report {
	t.Helper()
	for i, lr := range res.Layers {
		if lr.Ledger == nil {
			t.Fatalf("layer %d %q has no ledger", i, lr.Compute.Layer.Name)
		}
		if err := lr.Ledger.Check(); err != nil {
			t.Fatalf("layer %d %q: %v", i, lr.Compute.Layer.Name, err)
		}
		if lr.Ledger.Total != lr.StalledCycles() {
			t.Fatalf("layer %d %q: ledger total %d, stalled cycles %d",
				i, lr.Compute.Layer.Name, lr.Ledger.Total, lr.StalledCycles())
		}
		if got := lr.Ledger.Category(cycleacct.DRAMBwStall); got != lr.StallCycles {
			t.Fatalf("layer %d %q: dram_bw_stall bin %d, StallCycles %d",
				i, lr.Compute.Layer.Name, got, lr.StallCycles)
		}
	}
	rep, err := s.CycleReport(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	var stalled int64
	for _, lr := range res.Layers {
		stalled += lr.StalledCycles()
	}
	if rep.TotalCycles != stalled {
		t.Fatalf("report total %d, summed stalled cycles %d", rep.TotalCycles, stalled)
	}
	return rep
}

// TestCycleLedgerPropertyGrid sweeps a randomized sample of the
// (dataflow x array x SRAM x DRAM bandwidth) space and requires the sum
// invariant to hold at every point. This is the package's property test:
// whatever the operating point, every simulated cycle is attributed to
// exactly one taxonomy bin.
func TestCycleLedgerPropertyGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arrays := [][2]int{{4, 4}, {8, 8}, {8, 16}, {32, 8}}
	srams := [][3]int{{1, 1, 1}, {4, 4, 2}, {16, 16, 8}}
	bws := []float64{0, 0.7, 1, 2.5, 8}
	topo := topology.TinyNet()

	for _, df := range config.Dataflows {
		for trial := 0; trial < 6; trial++ {
			a := arrays[rng.Intn(len(arrays))]
			s := srams[rng.Intn(len(srams))]
			bw := bws[rng.Intn(len(bws))]
			cfg := config.New().WithArray(a[0], a[1]).WithSRAM(s[0], s[1], s[2]).WithDataflow(df)
			sim := newSim(t, cfg, Options{DRAMBandwidth: bw})
			res, err := sim.Simulate(topo)
			if err != nil {
				t.Fatalf("df=%v array=%v sram=%v bw=%v: %v", df, a, s, bw, err)
			}
			rep := checkRunLedgers(t, sim, res)
			if bw == 0 && rep.Categories[cycleacct.DRAMBwStall] != 0 {
				t.Errorf("df=%v array=%v: unbounded link accrued dram_bw_stall", df, a)
			}
			if bw > 0 && bw < 1 && rep.Categories[cycleacct.DRAMBwStall] == 0 {
				t.Errorf("df=%v array=%v bw=%v: starved link accrued no stall", df, a, bw)
			}
			for _, row := range rep.Roofline {
				if bw == 0 && row.Bound != cycleacct.BoundCompute {
					t.Errorf("unbounded link classified %q", row.Bound)
				}
			}
		}
	}
}

// TestCycleLedgerVectorGraph runs the BERTTiny operator graph: vector
// nodes (softmax, layernorm) must account their cycles as vector passes
// while matmul nodes account fold phases, and the books still close under
// a bounded link.
func TestCycleLedgerVectorGraph(t *testing.T) {
	g, err := topology.BuiltInGraph("BERTTiny")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.New().WithArray(16, 16).WithSRAM(64, 64, 32)
	sim := newSim(t, cfg, Options{DRAMBandwidth: 2})
	res, err := sim.SimulateGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	rep := checkRunLedgers(t, sim, res)
	if rep.Categories[cycleacct.VectorPass] == 0 {
		t.Error("BERTTiny has softmax/layernorm nodes but no vector_pass cycles")
	}
	if rep.Categories[cycleacct.MACActive] == 0 {
		t.Error("no mac_active cycles on matmul nodes")
	}
	var sawVector bool
	for i, lr := range res.Layers {
		if lr.Vector == nil {
			continue
		}
		sawVector = true
		// A vector node's compute cycles are all passes; the rest of its
		// ledger is the bounded link's stall share.
		if got := lr.Ledger.Category(cycleacct.VectorPass); got != lr.Compute.Cycles {
			t.Errorf("node %d: vector node binned %d of %d compute cycles as passes",
				i, got, lr.Compute.Cycles)
		}
	}
	if !sawVector {
		t.Fatal("graph exposed no vector nodes; test is vacuous")
	}
}

// TestCycleReportLeavesTracesIdentical pins the observability contract:
// rolling the ledgers into a report and encoding the pprof profile must
// not change a byte of trace output — attribution is a read-only tap.
func TestCycleReportLeavesTracesIdentical(t *testing.T) {
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)

	readAll := func(dir string) map[string][]byte {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string][]byte, len(entries))
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		return files
	}

	plainDir := t.TempDir()
	plain, err := New(cfg, Options{TraceDir: plainDir, DRAMBandwidth: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Simulate(topo); err != nil {
		t.Fatal(err)
	}

	profDir := t.TempDir()
	prof, err := New(cfg, Options{TraceDir: profDir, DRAMBandwidth: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prof.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	rep := checkRunLedgers(t, prof, res)
	var pprofBuf bytes.Buffer
	if err := rep.WritePprof(&pprofBuf, topo.Name); err != nil {
		t.Fatal(err)
	}
	if pprofBuf.Len() == 0 {
		t.Fatal("empty pprof profile")
	}

	want, got := readAll(plainDir), readAll(profDir)
	if len(want) != len(got) || len(want) == 0 {
		t.Fatalf("trace file counts differ: %d vs %d", len(want), len(got))
	}
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			t.Errorf("trace file %s differs once cycle accounting is consumed", name)
		}
	}
}

// TestCacheReplaysLedgers requires warm cache hits — in-memory and via a
// disk round trip — to replay the recorded ledgers exactly, so a cached
// run's cycle accounting is indistinguishable from a fresh simulation.
func TestCacheReplaysLedgers(t *testing.T) {
	cfg := config.New().WithArray(8, 8).WithSRAM(4, 4, 2)
	topo := topology.TinyNet()
	opt := Options{DRAMBandwidth: 1.5}

	base := runWith(t, cfg, opt, topo)

	check := func(name string, res RunResult) {
		t.Helper()
		for i := range base.Layers {
			if res.Layers[i].Ledger == nil {
				t.Fatalf("%s: layer %d ledger missing after cache replay", name, i)
			}
			if !reflect.DeepEqual(*res.Layers[i].Ledger, *base.Layers[i].Ledger) {
				t.Errorf("%s: layer %d ledger differs:\n fresh %+v\n replay %+v",
					name, i, *base.Layers[i].Ledger, *res.Layers[i].Ledger)
			}
		}
	}

	mem := simcache.New()
	mopt := opt
	mopt.Cache = mem
	runWith(t, cfg, mopt, topo) // cold fill
	warm := runWith(t, cfg, mopt, topo)
	if mem.Hits() == 0 {
		t.Fatal("warm in-memory run produced no hits")
	}
	check("memory", warm)

	dir := t.TempDir()
	c1, err := simcache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	dopt := opt
	dopt.Cache = c1
	runWith(t, cfg, dopt, topo) // fill the disk cache
	c2, err := simcache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	dopt.Cache = c2
	disk := runWith(t, cfg, dopt, topo)
	if c2.Hits() == 0 || c2.Misses() != 0 {
		t.Fatalf("disk replay: hits=%d misses=%d, want all hits", c2.Hits(), c2.Misses())
	}
	check("disk", disk)
}
