package core

import (
	"runtime"

	"scalesim/internal/obsv"
	"scalesim/internal/obsv/log"
)

// Manifest assembles the machine-readable record of a completed run: the
// configuration hash and topology identity, one entry per layer (cycles,
// utilization, stalls, DRAM traffic, wall time), and — when Options.Obs
// was attached — phase timings, engine span aggregates, metric snapshots
// and Go runtime stats. Works with a nil recorder too; the manifest then
// carries results without wall-clock costs.
func (s *Simulator) Manifest(res RunResult) *obsv.Manifest {
	rec := s.opt.Obs
	m := rec.Manifest()
	m.Tool = "scalesim"
	m.Run = res.Config.RunName
	m.ConfigHash = res.Config.Hash()
	if m.Workers = s.workers(); m.Workers <= 0 {
		m.Workers = runtime.GOMAXPROCS(0) // the engine's default resolution
	}
	m.Topology = &obsv.TopologyInfo{Name: res.Topology.Name, Layers: len(res.Topology.Layers)}
	if res.Graph != nil {
		m.Topology.Nodes = len(res.Graph.Nodes)
		m.Topology.Edges = res.Graph.Edges()
	}
	peakMACs := float64(res.Config.MACs())
	m.Layers = make([]obsv.LayerMetrics, 0, len(res.Layers))
	for i, lr := range res.Layers {
		lm := obsv.LayerMetrics{
			Index:       i,
			Name:        res.Topology.Layers[i].Name,
			Op:          string(lr.Kind),
			Cycles:      lr.Compute.Cycles,
			StallCycles: lr.StallCycles,
			StartCycle:  lr.StartCycle,
			MACs:        lr.Compute.MACs,
			DRAMReads:   lr.Memory.DRAMReads(),
			DRAMWrites:  lr.Memory.OfmapDRAMWrites,
			WallSeconds: rec.LayerSeconds(i),
		}
		if lr.Vector != nil {
			lm.VectorOps = lr.Vector.Ops
		}
		if lr.Compute.Cycles > 0 && peakMACs > 0 {
			lm.Utilization = float64(lr.Compute.MACs) / (peakMACs * float64(lr.Compute.Cycles))
		}
		m.Layers = append(m.Layers, lm)
	}
	if c := s.opt.Cache; c != nil {
		st := c.Stats()
		m.Cache = &obsv.CacheStats{Hits: st.Hits, Misses: st.Misses, Entries: st.Entries}
	}
	// Every pipeline run carries ledgers (live and cached alike); a
	// failure here means an invariant break and is logged, never hidden
	// inside a partially-filled manifest.
	if ca, err := s.CycleReport(res); err != nil {
		log.Default().Error("core", "cycle accounting", "error", err)
	} else {
		m.CycleAccounting = ca
	}
	if w := s.opt.Timeline; w != nil {
		tl := &obsv.TimelineSummary{
			Events:       w.Events(),
			WindowCycles: w.Window(),
		}
		if peaks := w.CounterPeaks(); len(peaks) > 0 {
			tl.PeakWordsPerCycle = peaks
		}
		for i, lr := range res.Layers {
			if lr.StallCycles <= 0 {
				continue
			}
			tl.LayerStalls = append(tl.LayerStalls, obsv.LayerStall{
				Index: i,
				Name:  res.Topology.Layers[i].Name,
				StallFraction: float64(lr.StallCycles) /
					float64(lr.StalledCycles()),
			})
		}
		m.Timeline = tl
	}
	return m
}
