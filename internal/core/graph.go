package core

import (
	"fmt"
	"time"

	"scalesim/internal/engine"
	"scalesim/internal/obsv"
	"scalesim/internal/topology"
)

// SimulateGraph runs an operator-graph workload: nodes are resolved into
// the graph's deterministic topological order, fanned out over the
// engine's dependency-aware scheduler — a node becomes ready only when
// every producer it consumes has completed — and joined in execution
// order. Matmul-shaped nodes take the systolic path, vector-shaped nodes
// the vector unit; both flow through the same caching, tracing, stall,
// energy and timeline machinery as flat runs.
//
// The modeled hardware still executes one node at a time (cycle offsets
// accumulate over the serialized execution order, exactly as Simulate's),
// so results, traces and reports are byte-identical for every worker
// count. The dependency edges bound host-side scheduling today and are
// the hook the roadmap's inter-layer pipelining will attach to.
func (s *Simulator) SimulateGraph(g topology.Graph) (RunResult, error) {
	stop := s.opt.Obs.Phase("core.validate")
	err := g.Validate()
	stop()
	if err != nil {
		return RunResult{}, err
	}
	nodes, preds, err := g.Schedule()
	if err != nil {
		return RunResult{}, err
	}
	s.opt.Progress.Start(len(nodes))
	obs := s.opt.Obs
	spanSink := obs.SpanSink()
	var tlSpans *obsv.SpanRecorder
	if s.opt.Timeline != nil {
		tlSpans = &obsv.SpanRecorder{}
		spanSink = obsv.TeeSpans(spanSink, tlSpans)
	}
	stop = obs.Phase("core.simulate")
	layers, err := engine.RunDAGObserved(s.workers(), len(nodes),
		func(i int) []int { return preds[i] },
		spanSink,
		func(i int) (lr LayerResult, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("core: node %d %q panicked: %v", i, nodes[i].Name, r)
				}
			}()
			var t0 time.Time
			if obs.Enabled() {
				t0 = time.Now()
			}
			lr, err = s.simulateNode(i, nodes[i])
			if err != nil {
				return LayerResult{}, fmt.Errorf("core: node %q: %w", nodes[i].Name, err)
			}
			obs.ObserveLayer(i, nodes[i].Name, time.Since(t0))
			s.opt.Progress.Step(nodes[i].Name)
			return lr, nil
		})
	stop()
	if err != nil {
		return RunResult{}, err
	}
	defer obs.Phase("core.aggregate")()
	// Synthesize the execution-order topology so reports and manifests
	// render graph runs with the same machinery as flat runs.
	topo := topology.Topology{Name: g.Name, Layers: make([]topology.Layer, len(nodes))}
	for i, n := range nodes {
		l := n.Layer
		l.Name = n.Name
		topo.Layers[i] = l
	}
	run := RunResult{Config: s.cfg, Topology: topo, Graph: &g, Layers: layers}
	for i := range run.Layers {
		lr := &run.Layers[i]
		lr.StartCycle = run.TotalCycles
		run.TotalCycles += lr.Compute.Cycles
		run.TotalMACs += lr.Compute.MACs
		run.TotalEnergy = run.TotalEnergy.Add(lr.Energy)
	}
	if s.opt.Timeline != nil {
		s.emitTimeline(run, tlSpans.Spans())
	}
	return run, nil
}
