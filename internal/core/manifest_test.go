package core

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/obsv"
	"scalesim/internal/topology"
)

func TestSimulatorManifest(t *testing.T) {
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)
	rec := obsv.NewRecorder()
	sim, err := New(cfg, Options{Workers: 2, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Manifest(res)
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Tool != "scalesim" || m.Run != cfg.RunName {
		t.Errorf("identity = %q/%q, want scalesim/%q", m.Tool, m.Run, cfg.RunName)
	}
	if m.ConfigHash != cfg.Hash() {
		t.Errorf("config hash not reproducible from the config")
	}
	if m.ConfigHash != cfg.WithArray(cfg.ArrayHeight, cfg.ArrayWidth).Hash() {
		t.Errorf("equal configs hash differently")
	}
	if m.Topology == nil || m.Topology.Name != topo.Name || m.Topology.Layers != len(topo.Layers) {
		t.Errorf("topology info = %+v", m.Topology)
	}
	if len(m.Layers) != len(topo.Layers) {
		t.Fatalf("manifest has %d layers, want %d", len(m.Layers), len(topo.Layers))
	}
	for i, lm := range m.Layers {
		lr := res.Layers[i]
		want := res.Topology.Layers[i].Name
		if lm.Name != want || lm.Cycles != lr.Compute.Cycles || lm.MACs != lr.Compute.MACs {
			t.Errorf("layer %d = %+v, want name %q cycles %d macs %d",
				i, lm, want, lr.Compute.Cycles, lr.Compute.MACs)
		}
		if lm.Utilization <= 0 || lm.Utilization > 1 {
			t.Errorf("layer %d utilization %v out of (0,1]", i, lm.Utilization)
		}
		if lm.WallSeconds <= 0 {
			t.Errorf("layer %d wall time not recorded", i)
		}
	}
	if m.Spans == nil || m.Spans.Jobs != int64(len(topo.Layers)) {
		t.Errorf("spans = %+v, want %d jobs", m.Spans, len(topo.Layers))
	}
	if m.Workers != 2 {
		t.Errorf("workers = %d, want 2", m.Workers)
	}
}

// BenchmarkManifestOverhead measures the cost of running fully
// instrumented versus uninstrumented: same TinyNet simulation, with the
// disabled case exercising the nil-recorder fast paths the zero-overhead
// contract promises.
func BenchmarkManifestOverhead(b *testing.B) {
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)
	run := func(b *testing.B, instrument bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var opt Options
			if instrument {
				opt.Obs = obsv.NewRecorder()
			}
			sim, err := New(cfg, opt)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Simulate(topo)
			if err != nil {
				b.Fatal(err)
			}
			if instrument {
				if err := sim.Manifest(res).Validate(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}
