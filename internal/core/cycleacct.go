package core

import (
	"fmt"

	"scalesim/internal/obsv/cycleacct"
)

// CycleReport rolls a run's per-layer ledgers into the cycle-accounting
// report: one checked NodeLedger per layer/node plus roofline rows
// positioning each against the array's compute ceiling and the simulator's
// DRAM-link ceiling (Options.DRAMBandwidth; zero means unbounded, so
// every layer classifies compute-bound). The sum invariant is re-enforced
// during rollup — a report is never published with open books.
func (s *Simulator) CycleReport(res RunResult) (*cycleacct.Report, error) {
	nodes := make([]cycleacct.NodeLedger, 0, len(res.Layers))
	rows := make([]cycleacct.RooflineRow, 0, len(res.Layers))
	wordBytes := int64(s.cfg.WordBytes)
	for i, lr := range res.Layers {
		if lr.Ledger == nil {
			return nil, fmt.Errorf("core: layer %d %q has no cycle ledger", i, lr.Compute.Layer.Name)
		}
		nodes = append(nodes, cycleacct.NodeLedger{
			Index:  i,
			Name:   lr.Compute.Layer.Name,
			Op:     string(lr.Kind),
			Ledger: lr.Ledger.Clone(),
		})
		ops, peak := lr.Compute.MACs, float64(s.cfg.MACs())
		if lr.Vector != nil {
			ops, peak = lr.Vector.Ops, float64(s.cfg.Lanes())
		}
		rows = append(rows, cycleacct.NewRooflineRow(
			lr.Compute.Layer.Name, string(lr.Kind),
			ops, lr.Memory.DRAMAccesses()*wordBytes, lr.StalledCycles(),
			peak, s.opt.DRAMBandwidth, wordBytes))
	}
	rep, err := cycleacct.NewReport(nodes)
	if err != nil {
		return nil, err
	}
	rep.Roofline = rows
	return rep, nil
}
