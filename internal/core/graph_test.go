package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/obsv"
	"scalesim/internal/obsv/timeline"
	"scalesim/internal/simcache"
	"scalesim/internal/topology"
)

// testGraphs returns the satellite's scheduling shapes: a diamond (one
// producer, two parallel consumers, one join) and a wide fan-out (one
// root feeding several independent heads joined by a sink), both mixing
// systolic and vector nodes.
func testGraphs() []topology.Graph {
	diamond := topology.Graph{Name: "diamond", Nodes: []topology.Node{
		topology.NodeOf(topology.FromGEMM("a", 16, 16, 16)),
		topology.NodeOf(topology.FromGEMM("b", 16, 16, 16), "a"),
		{Name: "sm", Kind: topology.OpSoftmax, Layer: topology.FromTensor("sm", 16, 16), Inputs: []string{"a"}},
		{Name: "join", Kind: topology.OpElementwise, Layer: topology.FromTensor("join", 16, 16), Inputs: []string{"b", "sm"}},
	}}
	fan := topology.Graph{Name: "fanout"}
	fan.Nodes = append(fan.Nodes, topology.NodeOf(topology.FromGEMM("root", 8, 32, 8)))
	var heads []string
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("head%d", i)
		fan.Nodes = append(fan.Nodes,
			topology.NodeOf(topology.FromGEMM(name, 8, 8, 8), "root"))
		heads = append(heads, name)
	}
	fan.Nodes = append(fan.Nodes, topology.Node{
		Name: "sink", Kind: topology.OpElementwise,
		Layer: topology.FromTensor("sink", 8, 8), Inputs: heads,
	})
	return []topology.Graph{diamond, fan}
}

// graphRun simulates g and collects the run plus any trace files.
func graphRun(t *testing.T, cfg config.Config, opt Options, g topology.Graph) (RunResult, map[string][]byte) {
	t.Helper()
	sim, err := New(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.SimulateGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	if opt.TraceDir != "" {
		entries, err := os.ReadDir(opt.TraceDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(opt.TraceDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
	}
	return res, files
}

// manifestLayersJSON projects a manifest onto its deterministic per-layer
// content (wall timings vary run to run and are zeroed).
func manifestLayersJSON(t *testing.T, m *obsv.Manifest) []byte {
	t.Helper()
	layers := append([]obsv.LayerMetrics(nil), m.Layers...)
	for i := range layers {
		layers[i].WallSeconds = 0
	}
	doc := struct {
		Topology *obsv.TopologyInfo
		Layers   []obsv.LayerMetrics
	}{m.Topology, layers}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGraphSchedulingDeterminism pins the satellite contract: diamond-
// and fan-out-shaped graphs produce byte-identical traces and manifests
// at workers=1 versus workers=N.
func TestGraphSchedulingDeterminism(t *testing.T) {
	cfg := config.New().WithArray(8, 8)
	for _, g := range testGraphs() {
		type outcome struct {
			res      RunResult
			files    map[string][]byte
			manifest []byte
		}
		byWorkers := map[int]outcome{}
		for _, workers := range []int{1, 4} {
			dir := t.TempDir()
			sim, err := New(cfg, Options{TraceDir: dir, Workers: workers, Obs: obsv.NewRecorder()})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.SimulateGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			files := map[string][]byte{}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				data, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				files[e.Name()] = data
			}
			byWorkers[workers] = outcome{res: res, files: files,
				manifest: manifestLayersJSON(t, sim.Manifest(res))}
		}
		seq, par := byWorkers[1], byWorkers[4]
		if len(seq.files) == 0 {
			t.Fatalf("%s: no trace files written", g.Name)
		}
		if len(par.files) != len(seq.files) {
			t.Fatalf("%s: trace file counts differ: %d vs %d", g.Name, len(seq.files), len(par.files))
		}
		for name, want := range seq.files {
			got, ok := par.files[name]
			if !ok {
				t.Errorf("%s: workers=4 missing trace file %s", g.Name, name)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: trace file %s differs between workers=1 and workers=4", g.Name, name)
			}
		}
		if !reflect.DeepEqual(seq.res, par.res) {
			t.Errorf("%s: results differ between workers=1 and workers=4", g.Name)
		}
		if !bytes.Equal(seq.manifest, par.manifest) {
			t.Errorf("%s: manifests differ between workers=1 and workers=4:\n%s\n%s",
				g.Name, seq.manifest, par.manifest)
		}
	}
}

// TestChainGraphMatchesFlat: a flat topology lifted through ChainGraph
// must reproduce the flat run exactly — results and trace bytes.
func TestChainGraphMatchesFlat(t *testing.T) {
	cfg := config.New().WithArray(8, 8)
	topo := topology.TinyNet()

	flatDir := t.TempDir()
	flat := runWith(t, cfg, Options{TraceDir: flatDir, Workers: 2}, topo)

	graphDir := t.TempDir()
	res, _ := graphRun(t, cfg, Options{TraceDir: graphDir, Workers: 2}, topology.ChainGraph(topo))

	// The graph run carries Graph and per-node kinds; project both runs
	// onto the flat result space before comparing.
	got := res
	got.Graph = nil
	for i := range got.Layers {
		got.Layers[i].Kind = ""
	}
	want := flat
	for i := range want.Layers {
		want.Layers[i].Kind = ""
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("chain-graph run differs from flat run")
	}

	flatFiles, err := os.ReadDir(flatDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range flatFiles {
		a, err := os.ReadFile(filepath.Join(flatDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(graphDir, e.Name()))
		if err != nil {
			t.Fatalf("graph run missing trace file %s", e.Name())
		}
		if !bytes.Equal(a, b) {
			t.Errorf("trace file %s differs between flat and chain-graph runs", e.Name())
		}
	}
}

// TestGraphCacheKindDistinct pins satellite 2 at the simulator level: a
// GEMM node and a same-shaped attention-score node sharing one cache
// must not collide — the second kind is a miss, not a replay of the
// first.
func TestGraphCacheKindDistinct(t *testing.T) {
	cfg := config.New().WithArray(8, 8)
	shape := topology.FromGEMM("x", 16, 16, 16)
	g := topology.Graph{Name: "kinds", Nodes: []topology.Node{
		{Name: "gemm", Kind: topology.OpConv, Layer: shape},
		{Name: "score", Kind: topology.OpAttentionScore, Layer: shape, Inputs: []string{"gemm"}},
		{Name: "sm", Kind: topology.OpSoftmax, Layer: topology.FromTensor("sm", 16, 16), Inputs: []string{"score"}},
		{Name: "ln", Kind: topology.OpLayerNorm, Layer: topology.FromTensor("ln", 16, 16), Inputs: []string{"sm"}},
	}}
	cache := simcache.New()
	res, _ := graphRun(t, cfg, Options{Cache: cache, Workers: 1}, g)
	if cache.Hits() != 0 {
		t.Fatalf("cache hits = %d: same-shaped nodes of different kinds must not share entries", cache.Hits())
	}
	if cache.Misses() != 4 || cache.Len() != 4 {
		t.Fatalf("misses=%d entries=%d, want 4 distinct entries", cache.Misses(), cache.Len())
	}
	// A cached re-run replays all four kinds byte-identically.
	again, _ := graphRun(t, cfg, Options{Cache: cache, Workers: 1}, g)
	if !reflect.DeepEqual(res, again) {
		t.Error("cached graph re-run differs")
	}
	if cache.Hits() != 4 {
		t.Errorf("warm hits = %d, want 4", cache.Hits())
	}
}

// TestBERTTinyEndToEnd runs the built-in encoder block with a recorder
// and timeline attached: the manifest must carry graph structure and
// per-node operator metrics, and the timeline both clock domains plus
// the vector unit's pass spans.
func TestBERTTinyEndToEnd(t *testing.T) {
	g, err := topology.BuiltInGraph("BERTTiny")
	if err != nil {
		t.Fatal(err)
	}
	var tlBuf bytes.Buffer
	tw := timeline.New(&tlBuf, timeline.Options{})
	rec := obsv.NewRecorder()
	cfg := config.New().WithArray(16, 16)
	sim, err := New(cfg, Options{Workers: 4, Obs: rec, Timeline: tw})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.SimulateGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= 0 || res.TotalMACs <= 0 {
		t.Fatalf("degenerate run: cycles=%d macs=%d", res.TotalCycles, res.TotalMACs)
	}
	if len(res.Layers) != len(g.Nodes) {
		t.Fatalf("%d layer results, want %d", len(res.Layers), len(g.Nodes))
	}
	// Serialized execution: start cycles accumulate strictly.
	var off int64
	for i, lr := range res.Layers {
		if lr.StartCycle != off {
			t.Fatalf("layer %d starts at %d, want %d", i, lr.StartCycle, off)
		}
		off += lr.Compute.Cycles
		if lr.Kind.Vector() && (lr.Vector == nil || lr.Vector.Ops <= 0) {
			t.Errorf("layer %d (%s): vector node without vector result", i, lr.Kind)
		}
	}

	m := sim.Manifest(res)
	if m.Topology == nil || m.Topology.Nodes != len(g.Nodes) || m.Topology.Edges != g.Edges() {
		t.Fatalf("manifest topology: %+v", m.Topology)
	}
	ops := map[string]int{}
	for _, lm := range m.Layers {
		if lm.Op == "" {
			t.Errorf("layer %s missing op", lm.Name)
		}
		ops[lm.Op]++
		if (lm.Op == "softmax" || lm.Op == "layernorm" || lm.Op == "eltwise") && lm.VectorOps <= 0 {
			t.Errorf("layer %s (%s): vector_ops = %d", lm.Name, lm.Op, lm.VectorOps)
		}
	}
	for _, want := range []string{"conv", "attn_score", "attn_value", "softmax", "layernorm", "eltwise"} {
		if ops[want] == 0 {
			t.Errorf("manifest lists no %s layers (have %v)", want, ops)
		}
	}

	var events []map[string]any
	if err := json.Unmarshal(tlBuf.Bytes(), &events); err != nil {
		t.Fatalf("timeline not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	passes := 0
	opsArg := 0
	for _, e := range events {
		if pid, ok := e["pid"].(float64); ok {
			pids[pid] = true
		}
		if name, _ := e["name"].(string); len(name) > 5 && name[:5] == "pass " {
			passes++
		}
		if args, ok := e["args"].(map[string]any); ok {
			if _, ok := args["op"]; ok {
				opsArg++
			}
		}
	}
	if len(pids) < 2 {
		t.Errorf("timeline carries %d pids, want both clock domains", len(pids))
	}
	if passes == 0 {
		t.Error("timeline has no vector pass spans")
	}
	if opsArg == 0 {
		t.Error("timeline layer spans carry no op annotation")
	}
}
