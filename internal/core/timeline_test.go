package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/obsv/timeline"
	"scalesim/internal/topology"
)

// TestTraceDeterminismWithTimeline pins the timeline contract: attaching
// a timeline writer must not change a single byte of trace output or any
// aggregate. TinyNet runs traced at workers=4 under a bounded DRAM link
// with and without a writer; files and results must match exactly, and
// the exported timeline must be well-formed Trace Event JSON carrying
// both clock domains.
func TestTraceDeterminismWithTimeline(t *testing.T) {
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)

	type run struct {
		files map[string][]byte
		res   RunResult
	}
	var runs []run
	var tlBuf bytes.Buffer
	var sim *Simulator
	for _, withTimeline := range []bool{false, true} {
		dir := t.TempDir()
		opt := Options{TraceDir: dir, Workers: 4, DRAMBandwidth: 4}
		if withTimeline {
			opt.Timeline = timeline.New(&tlBuf, timeline.Options{})
		}
		s, err := New(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Simulate(topo)
		if err != nil {
			t.Fatal(err)
		}
		if withTimeline {
			sim = s
			if err := opt.Timeline.Close(); err != nil {
				t.Fatal(err)
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string][]byte, len(entries))
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		runs = append(runs, run{files: files, res: res})
	}

	plain, timed := runs[0], runs[1]
	if len(plain.files) != len(timed.files) {
		t.Fatalf("trace file counts differ: plain %d, timeline %d",
			len(plain.files), len(timed.files))
	}
	for name, want := range plain.files {
		got, ok := timed.files[name]
		if !ok {
			t.Errorf("timeline run missing trace file %s", name)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("trace file %s differs with timeline writer attached", name)
		}
	}
	if !reflect.DeepEqual(plain.res, timed.res) {
		t.Errorf("aggregates differ with timeline writer attached")
	}

	// The export itself: a JSON array of events each carrying ph/ts/pid,
	// with the machine process (layer/fold spans, counters) and the host
	// process (worker spans) both present.
	var events []map[string]any
	if err := json.Unmarshal(tlBuf.Bytes(), &events); err != nil {
		t.Fatalf("timeline is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("timeline is empty")
	}
	pids := map[float64]bool{}
	var spans, counters int
	for i, e := range events {
		for _, key := range []string{"ph", "ts", "pid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, e)
			}
		}
		pids[e["pid"].(float64)] = true
		switch e["ph"] {
		case "X":
			spans++
		case "C":
			counters++
		}
	}
	if len(pids) < 2 {
		t.Fatalf("timeline has %d processes, want both clock domains", len(pids))
	}
	if spans < len(topo.Layers) || counters == 0 {
		t.Fatalf("timeline too sparse: %d spans, %d counters", spans, counters)
	}

	// The manifest summarizes the export.
	m := sim.Manifest(timed.res)
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Timeline == nil {
		t.Fatal("manifest missing timeline summary")
	}
	if m.Timeline.Events != int64(len(events)) {
		t.Errorf("summary counts %d events, export has %d", m.Timeline.Events, len(events))
	}
	if m.Timeline.WindowCycles != timeline.DefaultWindow {
		t.Errorf("summary window %d, want %d", m.Timeline.WindowCycles, timeline.DefaultWindow)
	}
	if len(m.Timeline.PeakWordsPerCycle) == 0 {
		t.Error("summary has no counter peaks")
	}
	for _, ls := range m.Timeline.LayerStalls {
		if ls.StallFraction <= 0 || ls.StallFraction >= 1 {
			t.Errorf("layer %q stall fraction %v out of range", ls.Name, ls.StallFraction)
		}
	}
}
