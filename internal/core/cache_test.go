package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/dram"
	"scalesim/internal/obsv"
	"scalesim/internal/obsv/timeline"
	"scalesim/internal/simcache"
	"scalesim/internal/topology"
)

// runWith simulates topo under cfg/opt and returns the result.
func runWith(t *testing.T, cfg config.Config, opt Options, topo topology.Topology) RunResult {
	t.Helper()
	sim, err := New(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resultJSON flattens a run result for byte-level comparison. Everything
// a report can print derives from this serialization, so equal bytes here
// pin the satellite's "byte-identical reports" requirement at the source.
func resultJSON(t *testing.T, res RunResult) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCacheEquivalenceResNet50 runs ResNet50 cache-off, cache-on (cold),
// and cache-on again (warm, same cache) and requires byte-identical
// results each time. ResNet50 repeats conv shapes across blocks, so even
// the cold cached run exercises hits.
func TestCacheEquivalenceResNet50(t *testing.T) {
	cfg := config.New().WithArray(16, 16)
	topo := topology.ResNet50()

	base := resultJSON(t, runWith(t, cfg, Options{}, topo))

	cache := simcache.New()
	cold := runWith(t, cfg, Options{Cache: cache}, topo)
	if got := resultJSON(t, cold); !bytes.Equal(base, got) {
		t.Fatal("cold cached run differs from uncached run")
	}
	if cache.Hits() == 0 {
		t.Fatal("ResNet50 exposes repeated shapes, want intra-run hits")
	}
	if int(cache.Hits()+cache.Misses()) != len(topo.Layers) {
		t.Fatalf("lookups=%d want %d", cache.Hits()+cache.Misses(), len(topo.Layers))
	}

	hits := cache.Hits()
	warm := runWith(t, cfg, Options{Cache: cache}, topo)
	if got := resultJSON(t, warm); !bytes.Equal(base, got) {
		t.Fatal("warm cached run differs from uncached run")
	}
	if got := cache.Hits() - hits; got != int64(len(topo.Layers)) {
		t.Fatalf("warm run hits=%d, want all %d layers", got, len(topo.Layers))
	}
}

// TestCacheEquivalenceBoundedDRAM covers the analyzed extras: stall
// cycles under a bounded link and DRAM timing statistics must replay from
// the cache exactly.
func TestCacheEquivalenceBoundedDRAM(t *testing.T) {
	cfg := config.New().WithArray(8, 8).WithSRAM(16, 16, 8)
	topo := topology.TinyNet()
	d := dram.DDR3()
	opt := Options{DRAMBandwidth: 1.5, DRAM: &d}

	base := runWith(t, cfg, opt, topo)

	cache := simcache.New()
	copt := opt
	copt.Cache = cache
	cold := runWith(t, cfg, copt, topo)
	warm := runWith(t, cfg, copt, topo)
	if cache.Hits() == 0 {
		t.Fatal("warm run produced no hits")
	}
	for i := range base.Layers {
		if base.Layers[i].StallCycles == 0 {
			t.Fatalf("layer %d: test is vacuous, no stalls under bounded link", i)
		}
	}
	if !bytes.Equal(resultJSON(t, base), resultJSON(t, cold)) {
		t.Fatal("cold cached run differs")
	}
	if !bytes.Equal(resultJSON(t, base), resultJSON(t, warm)) {
		t.Fatal("warm cached run differs")
	}
	if warm.Layers[0].DRAMStats == nil || warm.Layers[0].DRAMStats.Requests == 0 {
		t.Fatal("DRAM stats not replayed from cache")
	}
}

// TestCacheKeyCollisions pins that near-identical layers and near-identical
// configurations never share entries: a stride change, a dataflow change
// and a bandwidth-bound change must each simulate fresh.
func TestCacheKeyCollisions(t *testing.T) {
	cache := simcache.New()
	cfg := config.New().WithArray(8, 8)
	base := topology.Layer{Name: "a", IfmapH: 14, IfmapW: 14, FilterH: 3, FilterW: 3,
		Channels: 8, NumFilters: 8, Stride: 1}
	strided := base
	strided.Name = "b"
	strided.Stride = 2

	sim, err := New(cfg, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sim.SimulateLayer(base)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sim.SimulateLayer(strided)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 || cache.Misses() != 2 {
		t.Fatalf("stride variant collided: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
	if ra.Compute.Cycles == rb.Compute.Cycles {
		t.Fatal("stride variants simulated identically; collision test is vacuous")
	}

	// Same shapes under a different dataflow: fresh entries again.
	ws, err := New(cfg.WithDataflow(config.WeightStationary), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.SimulateLayer(base); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 {
		t.Fatal("dataflow variant collided")
	}

	// Same shape with a bandwidth bound: must not reuse the unbounded entry.
	bw, err := New(cfg, Options{Cache: cache, DRAMBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	rbw, err := bw.SimulateLayer(base)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 {
		t.Fatal("bandwidth-bound variant collided")
	}
	if rbw.StallCycles == 0 {
		t.Fatal("bounded run has no stalls; bound-key test is vacuous")
	}

	// And the true repeat does hit.
	if _, err := sim.SimulateLayer(base); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 1 {
		t.Fatalf("identical repeat missed: hits=%d", cache.Hits())
	}
}

// TestCacheHitRelabelsLayer: an entry filled under one layer name must
// report the hitting layer's name, not the filler's.
func TestCacheHitRelabelsLayer(t *testing.T) {
	cache := simcache.New()
	sim, err := New(config.New().WithArray(8, 8), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	l := topology.FromGEMM("first", 32, 64, 32)
	if _, err := sim.SimulateLayer(l); err != nil {
		t.Fatal(err)
	}
	twin := l
	twin.Name = "second"
	res, err := sim.SimulateLayer(twin)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 1 {
		t.Fatalf("twin missed: hits=%d", cache.Hits())
	}
	if res.Compute.Layer.Name != "second" {
		t.Fatalf("hit kept filler's name %q", res.Compute.Layer.Name)
	}
}

// TestCacheBypassedByLiveSinks: every option that demands a live
// per-layer consumer must disable the cache for the run.
func TestCacheBypassedByLiveSinks(t *testing.T) {
	cache := simcache.New()
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)

	variants := map[string]Options{
		"tracedir": {Cache: cache, TraceDir: t.TempDir()},
		"timeline": {Cache: cache, Timeline: timeline.New(&bytes.Buffer{}, timeline.Options{})},
	}
	for name, opt := range variants {
		runWith(t, cfg, opt, topo)
		if cache.Misses() != 0 || cache.Len() != 0 {
			t.Fatalf("%s: cache consulted despite live sink", name)
		}
	}
}

// TestCacheStatsInManifest: the run manifest must carry the cache
// counters and the canonical config hash.
func TestCacheStatsInManifest(t *testing.T) {
	cache := simcache.New()
	cfg := config.New().WithArray(8, 8)
	rec := obsv.NewRecorder()
	sim, err := New(cfg, Options{Cache: cache, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.TinyNet()
	res, err := sim.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	_ = res2
	m := sim.Manifest(res)
	if m.Cache == nil {
		t.Fatal("manifest missing cache stats")
	}
	if m.Cache.Hits == 0 || m.Cache.Misses == 0 {
		t.Fatalf("cache stats = %+v, want both hits and misses", m.Cache)
	}
	if m.ConfigHash != cfg.Hash() {
		t.Fatalf("manifest config hash %q", m.ConfigHash)
	}
	reg := rec.Metrics()
	if reg.Counter("core.simcache.hits").Value() == 0 {
		t.Fatal("metrics registry missing simcache hit counter")
	}
	if reg.Counter("core.simcache.misses").Value() == 0 {
		t.Fatal("metrics registry missing simcache miss counter")
	}
}

// TestDiskCacheAcrossSimulators: a disk-backed cache fills in one
// simulator and replays byte-identically in a fresh one sharing only the
// directory.
func TestDiskCacheAcrossSimulators(t *testing.T) {
	dir := t.TempDir()
	cfg := config.New().WithArray(16, 16)
	topo := topology.Topology{Name: "gemms", Layers: []topology.Layer{
		topology.FromGEMM("g0", 64, 128, 96),
		topology.FromGEMM("g1", 32, 256, 64),
		topology.FromGEMM("g0_twin", 64, 128, 96),
	}}

	base := resultJSON(t, runWith(t, cfg, Options{}, topo))

	c1, err := simcache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, runWith(t, cfg, Options{Cache: c1}, topo)); !bytes.Equal(base, got) {
		t.Fatal("filling run differs")
	}

	c2, err := simcache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, runWith(t, cfg, Options{Cache: c2}, topo)); !bytes.Equal(base, got) {
		t.Fatal("disk-replayed run differs")
	}
	if c2.Hits() == 0 || c2.Misses() != 0 {
		t.Fatalf("disk replay: hits=%d misses=%d, want all hits", c2.Hits(), c2.Misses())
	}
}
