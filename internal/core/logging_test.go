package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/obsv"
	"scalesim/internal/obsv/log"
	"scalesim/internal/runstore"
	"scalesim/internal/simcache"
	"scalesim/internal/topology"
)

// traceFiles reads every trace file written to dir, keyed by file name.
func traceFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return files
}

// TestLoggingAndRegistryPreserveEquivalence pins the observability
// contract end to end: a run with a debug-level default logger installed
// and its manifest registered in a run store produces byte-identical
// results and trace files to a silent run, and the registry diff of the
// two runs reports zero deltas. Logging observes the simulation; it must
// never perturb it.
func TestLoggingAndRegistryPreserveEquivalence(t *testing.T) {
	topo := topology.TinyNet()
	cfg := config.New().WithArray(8, 8)

	run := func(traceDir string) (RunResult, *obsv.Manifest) {
		sim, err := New(cfg, Options{
			TraceDir: traceDir,
			Workers:  4,
			Cache:    simcache.New(),
			Obs:      obsv.NewRecorder(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Simulate(topo)
		if err != nil {
			t.Fatal(err)
		}
		return res, sim.Manifest(res)
	}

	silentDir := t.TempDir()
	silentRes, silentManifest := run(silentDir)

	var events bytes.Buffer
	log.SetDefault(log.New(&events, log.LevelDebug))
	loggedDir := t.TempDir()
	loggedRes, loggedManifest := run(loggedDir)
	log.SetDefault(nil)

	if events.Len() == 0 {
		t.Fatal("debug logger captured no events; the test is vacuous")
	}
	for _, want := range []string{`"subsystem":"engine"`, `"subsystem":"core"`, `"msg":"stage done"`} {
		if !bytes.Contains(events.Bytes(), []byte(want)) {
			t.Errorf("log missing %s", want)
		}
	}

	if !bytes.Equal(resultJSON(t, silentRes), resultJSON(t, loggedRes)) {
		t.Fatal("logged run result differs from silent run")
	}
	silentFiles, loggedFiles := traceFiles(t, silentDir), traceFiles(t, loggedDir)
	if len(silentFiles) == 0 || len(silentFiles) != len(loggedFiles) {
		t.Fatalf("trace file counts differ: silent %d, logged %d", len(silentFiles), len(loggedFiles))
	}
	for name, want := range silentFiles {
		if got, ok := loggedFiles[name]; !ok || !bytes.Equal(got, want) {
			t.Errorf("trace file %s differs between silent and logged runs", name)
		}
	}

	// Registering both runs must not disturb either manifest, and the
	// registry's own diff must see a clean replay: same key, zero deltas.
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := store.Add(silentManifest)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Add(loggedManifest)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != b.Key {
		t.Fatalf("same config and topology produced different keys: %s vs %s", a.Key, b.Key)
	}
	d := runstore.Diff(silentManifest, loggedManifest, 0.05)
	if !d.Identical() {
		t.Fatalf("registry diff of silent vs logged run is not identical: %+v", d)
	}
}
