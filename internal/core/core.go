// Package core is the top of the simulator stack: it wires the
// cycle-accurate systolic engine, the SRAM/DRAM memory system, the optional
// DRAM timing model and the energy model into a single Simulator that
// executes whole network topologies layer by layer (the original tool's
// behaviour: one CSV row at a time, serialized in file order) and collects
// per-layer and whole-network results.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scalesim/internal/config"
	"scalesim/internal/dram"
	"scalesim/internal/energy"
	"scalesim/internal/memory"
	"scalesim/internal/systolic"
	"scalesim/internal/topology"
	"scalesim/internal/trace"
)

// Options tunes a Simulator beyond the architecture configuration.
type Options struct {
	// Memory forwards to the per-layer memory system.
	Memory memory.Options
	// Energy is the energy model; the zero value selects energy.Eyeriss().
	Energy energy.Model
	// TraceDir, when non-empty, receives per-layer SRAM and DRAM trace CSVs
	// named <run>_<layer>_<stream>.csv.
	TraceDir string
	// DRAM, when non-nil, replays the DRAM read trace through the timing
	// model and records its statistics per layer.
	DRAM *dram.Config
	// DRAMBandwidth bounds the memory link in words per cycle; when
	// positive, each layer's stall cycles under that link are computed
	// from the demand traces (LayerResult.StallCycles). Zero means an
	// unbounded link, the paper's stall-free operating point.
	DRAMBandwidth float64
}

// LayerResult is everything the simulator learns about one layer.
type LayerResult struct {
	// Compute is the cycle-accurate systolic result.
	Compute systolic.Result
	// Memory is the SRAM/DRAM traffic summary.
	Memory memory.Report
	// Energy is the layer's energy breakdown.
	Energy energy.Breakdown
	// DRAMStats holds the timing-model statistics when Options.DRAM is set.
	DRAMStats *dram.Stats
	// StallCycles is the extra runtime a bounded DRAM link inflicts; only
	// computed when Options.DRAMBandwidth is positive.
	StallCycles int64
}

// StalledCycles returns the runtime including memory stalls.
func (lr LayerResult) StalledCycles() int64 { return lr.Compute.Cycles + lr.StallCycles }

// RunResult aggregates a whole topology.
type RunResult struct {
	// Config used for the run.
	Config config.Config
	// Topology that was executed.
	Topology topology.Topology
	// Layers holds one result per layer, in execution order.
	Layers []LayerResult
	// TotalCycles is the summed runtime (layers execute serially).
	TotalCycles int64
	// TotalMACs is the summed useful work.
	TotalMACs int64
	// TotalEnergy sums the per-layer breakdowns.
	TotalEnergy energy.Breakdown
}

// DRAMReads returns the network's total DRAM read words.
func (r RunResult) DRAMReads() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.Memory.DRAMReads()
	}
	return n
}

// DRAMWrites returns the network's total DRAM write words.
func (r RunResult) DRAMWrites() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.Memory.OfmapDRAMWrites
	}
	return n
}

// AvgBandwidth returns the whole-run average interface bandwidth in bytes
// per cycle.
func (r RunResult) AvgBandwidth() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64((r.DRAMReads()+r.DRAMWrites())*int64(r.Config.WordBytes)) / float64(r.TotalCycles)
}

// Simulator executes layers under one architecture configuration.
type Simulator struct {
	cfg config.Config
	opt Options
	em  energy.Model
}

// New validates the configuration and builds a Simulator.
func New(cfg config.Config, opt Options) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.DRAMBandwidth < 0 {
		return nil, fmt.Errorf("core: negative DRAM bandwidth %v", opt.DRAMBandwidth)
	}
	em := opt.Energy
	if em == (energy.Model{}) {
		em = energy.Eyeriss()
	}
	if err := em.Validate(); err != nil {
		return nil, err
	}
	if opt.DRAM != nil {
		if err := opt.DRAM.Validate(); err != nil {
			return nil, err
		}
	}
	return &Simulator{cfg: cfg, opt: opt, em: em}, nil
}

// Config returns the simulator's architecture configuration.
func (s *Simulator) Config() config.Config { return s.cfg }

// SimulateLayer runs one layer through compute, memory, optional DRAM
// timing, and energy accounting.
func (s *Simulator) SimulateLayer(l topology.Layer) (LayerResult, error) {
	if err := l.Validate(); err != nil {
		return LayerResult{}, err
	}
	var files []*tracedFile
	defer func() {
		for _, f := range files {
			f.close()
		}
	}()
	openTrace := func(stream string) (trace.Consumer, error) {
		if s.opt.TraceDir == "" {
			return nil, nil
		}
		f, err := newTracedFile(s.opt.TraceDir, s.cfg.RunName, l.Name, stream)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		return f.csv, nil
	}

	var stalls *trace.StallAnalyzer
	if s.opt.DRAMBandwidth > 0 {
		stalls = trace.NewStallAnalyzer(s.opt.DRAMBandwidth)
	}
	var dramModel *dram.Model
	if s.opt.DRAM != nil {
		var err error
		dramModel, err = dram.New(*s.opt.DRAM)
		if err != nil {
			return LayerResult{}, err
		}
	}

	memOpt := s.opt.Memory
	readTrace, err := openTrace("dram_read")
	if err != nil {
		return LayerResult{}, err
	}
	writeTrace, err := openTrace("dram_write")
	if err != nil {
		return LayerResult{}, err
	}
	memOpt.DRAMRead = combine(memOpt.DRAMRead, readTrace, dramConsumer(dramModel), stallConsumer(stalls))
	memOpt.DRAMWrite = combine(memOpt.DRAMWrite, writeTrace, dramConsumer(dramModel), stallConsumer(stalls))

	sys, err := memory.NewSystem(s.cfg, memOpt)
	if err != nil {
		return LayerResult{}, err
	}
	sys.SetRegions(
		s.cfg.IfmapOffset, l.IfmapWords(),
		s.cfg.FilterOffset, l.FilterWords(),
		s.cfg.OfmapOffset, l.OfmapWords(),
	)

	sinks := systolic.Sinks{
		IfmapRead:  trace.Consumer(sys.Ifmap),
		FilterRead: trace.Consumer(sys.Filter),
		OfmapWrite: trace.Consumer(sys.Ofmap),
	}
	for _, tap := range []struct {
		stream string
		sink   *trace.Consumer
	}{
		{"sram_read_ifmap", &sinks.IfmapRead},
		{"sram_read_filter", &sinks.FilterRead},
		{"sram_write_ofmap", &sinks.OfmapWrite},
	} {
		t, err := openTrace(tap.stream)
		if err != nil {
			return LayerResult{}, err
		}
		if t != nil {
			*tap.sink = trace.Tee(*tap.sink, t)
		}
	}

	comp, err := systolic.Run(l, s.cfg, sinks)
	if err != nil {
		return LayerResult{}, err
	}
	sys.Ofmap.Flush(comp.Cycles)
	mrep := sys.Report(comp.Cycles)

	res := LayerResult{
		Compute: comp,
		Memory:  mrep,
		Energy: s.em.Compute(
			int64(s.cfg.MACs()), comp.Cycles,
			mrep.IfmapSRAMReads+mrep.FilterSRAMReads+mrep.OfmapSRAMWrites,
			mrep.DRAMAccesses(),
		),
	}
	if dramModel != nil {
		stats := dramModel.Stats()
		res.DRAMStats = &stats
	}
	if stalls != nil {
		res.StallCycles = stalls.StallCycles()
	}
	for _, f := range files {
		if err := f.flush(); err != nil {
			return LayerResult{}, err
		}
	}
	return res, nil
}

// Simulate runs every layer of the topology in order.
func (s *Simulator) Simulate(topo topology.Topology) (RunResult, error) {
	if err := topo.Validate(); err != nil {
		return RunResult{}, err
	}
	run := RunResult{Config: s.cfg, Topology: topo}
	for _, l := range topo.Layers {
		lr, err := s.SimulateLayer(l)
		if err != nil {
			return RunResult{}, fmt.Errorf("core: layer %q: %w", l.Name, err)
		}
		run.Layers = append(run.Layers, lr)
		run.TotalCycles += lr.Compute.Cycles
		run.TotalMACs += lr.Compute.MACs
		run.TotalEnergy = run.TotalEnergy.Add(lr.Energy)
	}
	return run, nil
}

// combine merges optional consumers, dropping nils.
func combine(consumers ...trace.Consumer) trace.Consumer {
	var live []trace.Consumer
	for _, c := range consumers {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return trace.Tee(live...)
}

// dramConsumer adapts a nil-able model to a consumer.
func dramConsumer(m *dram.Model) trace.Consumer {
	if m == nil {
		return nil
	}
	return m
}

// stallConsumer adapts a nil-able stall analyzer to a consumer.
func stallConsumer(s *trace.StallAnalyzer) trace.Consumer {
	if s == nil {
		return nil
	}
	return s
}

// tracedFile is one per-layer trace CSV on disk.
type tracedFile struct {
	f   *os.File
	csv *trace.CSVWriter
}

func newTracedFile(dir, run, layer, stream string) (*tracedFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	name := fmt.Sprintf("%s_%s_%s.csv", sanitize(run), sanitize(layer), stream)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &tracedFile{f: f, csv: trace.NewCSVWriter(f)}, nil
}

func (t *tracedFile) flush() error {
	if err := t.csv.Flush(); err != nil {
		return fmt.Errorf("core: writing trace %s: %w", t.f.Name(), err)
	}
	return nil
}

func (t *tracedFile) close() { _ = t.f.Close() }

// sanitize makes a string safe as a file-name component.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}
