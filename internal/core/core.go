// Package core is the top of the simulator stack: it wires the
// cycle-accurate systolic engine, the SRAM/DRAM memory system, the optional
// DRAM timing model and the energy model into a single Simulator that
// executes whole network topologies and collects per-layer and
// whole-network results.
//
// Layers model hardware that executes them serially (the original tool's
// behaviour: one CSV row at a time, in file order), but their simulations
// are independent, so Simulate fans them out over engine.Run's bounded
// worker pool and joins the results — including the serialized cycle
// offsets — in layer order. Output is bit-identical for every worker
// count. Per-layer consumers (trace files, the DRAM timing model, the
// stall analyzer, caller-supplied sinks) are wired through an
// engine.Registry of sink factories, so every layer gets fresh consumers
// and nothing is shared across worker goroutines.
package core

import (
	"context"
	"fmt"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/dram"
	"scalesim/internal/energy"
	"scalesim/internal/engine"
	"scalesim/internal/memory"
	"scalesim/internal/obsv"
	"scalesim/internal/obsv/cycleacct"
	"scalesim/internal/obsv/log"
	"scalesim/internal/obsv/timeline"
	"scalesim/internal/simcache"
	"scalesim/internal/systolic"
	"scalesim/internal/topology"
	"scalesim/internal/trace"
	"scalesim/internal/vector"
)

// Options tunes a Simulator beyond the architecture configuration.
type Options struct {
	// Memory forwards to the per-layer memory system. The DRAMRead and
	// DRAMWrite consumers, when set, are shared across layers; see Workers.
	Memory memory.Options
	// Energy is the energy model; the zero value selects energy.Eyeriss().
	Energy energy.Model
	// TraceDir, when non-empty, receives per-layer SRAM and DRAM trace CSVs
	// named <run>_<layer>_<stream>.csv.
	TraceDir string
	// DRAM, when non-nil, replays each layer's DRAM traces through the
	// timing model and records its statistics per layer.
	DRAM *dram.Config
	// DRAMBandwidth bounds the memory link in words per cycle; when
	// positive, each layer's stall cycles under that link are computed
	// from the demand traces (LayerResult.StallCycles). Zero means an
	// unbounded link, the paper's stall-free operating point.
	DRAMBandwidth float64
	// Cache, when non-nil, memoizes the pure compute stage of each layer
	// under its canonical key (config hash x layer shape x memory and DRAM
	// bounds): repeated shapes replay their recorded cycles, traffic and
	// stall results instead of re-simulating, with byte-identical reports.
	// The cache is consulted only when no option demands a live per-layer
	// consumer — trace files, timelines, caller sinks, or shared DRAM
	// consumers/taps disable it for the run. One cache may be shared by
	// many simulators and goroutines.
	Cache *simcache.Cache
	// Workers bounds how many layers Simulate executes concurrently. Zero
	// picks GOMAXPROCS — unless Memory.DRAMRead or Memory.DRAMWrite is set,
	// in which case layers serialize so the shared consumer never observes
	// two layers at once. Results are identical for every value; set 1 to
	// force the fully sequential original behaviour, or an explicit N > 1
	// together with shared consumers that are safe for concurrent use.
	Workers int
	// Sinks appends caller-supplied per-layer sink factories to the
	// built-in ones (trace files, DRAM timing, stall analysis). Each
	// factory runs once per layer, possibly from concurrent worker
	// goroutines, and must wire fresh consumers each time.
	Sinks engine.Registry
	// Timeline, when non-nil, receives the run as a Chrome Trace Event
	// timeline: per-layer and per-fold spans, stall intervals and windowed
	// bandwidth counters on the simulated-cycle axis, plus the engine's
	// scheduler spans on the host wall-clock axis. Purely additive — all
	// simulation output is byte-identical with or without it. One Writer
	// serves one Simulate call.
	Timeline *timeline.Writer
	// Obs, when non-nil, records run instrumentation: phase wall-clock
	// timings, per-layer wall times and stage histograms, and the
	// engine's scheduler spans. Purely additive — simulation results and
	// traces are byte-identical with or without it; see
	// Simulator.Manifest for the snapshot.
	Obs *obsv.Recorder
	// Progress, when non-nil, receives one step per completed layer
	// (display only; completion order may differ from layer order when
	// Workers > 1).
	Progress *obsv.Progress
	// Context, when non-nil, cancels the run at layer granularity: each
	// layer checks it before starting and a cancelled context aborts the
	// run with the context's error (layers already in flight complete).
	// This is how a job runner stops a running simulation without killing
	// the process; results produced before the abort are discarded.
	Context context.Context
}

// LayerResult is everything the simulator learns about one layer (or
// operator-graph node).
type LayerResult struct {
	// Kind is the node's operator kind; flat-topology layers are conv.
	Kind topology.OpKind
	// Compute is the cycle-accurate systolic result. For vector-shaped
	// nodes it is synthesized — the layer, the serialized cycle count and
	// zero MACs (the array sits idle) — so cycle accounting, reports and
	// manifests treat every node uniformly.
	Compute systolic.Result
	// Vector is the vector-unit result for non-matmul nodes, nil for
	// systolic layers.
	Vector *vector.Result
	// Memory is the SRAM/DRAM traffic summary.
	Memory memory.Report
	// Energy is the layer's energy breakdown.
	Energy energy.Breakdown
	// DRAMStats holds the timing-model statistics when Options.DRAM is set.
	DRAMStats *dram.Stats
	// StallCycles is the extra runtime a bounded DRAM link inflicts; only
	// computed when Options.DRAMBandwidth is positive.
	StallCycles int64
	// StartCycle is the layer's cumulative cycle offset in the serialized
	// execution order; Simulate fills it in after joining the per-layer
	// results (zero for a lone SimulateLayer call).
	StartCycle int64
	// Ledger is the layer's cycle-accounting ledger: every cycle of
	// StalledCycles() binned into the cycleacct taxonomy, with
	// sum(bins) == Total enforced by the analyze stage. Cache hits
	// replay the ledger recorded with the entry.
	Ledger *cycleacct.Ledger
}

// StalledCycles returns the runtime including memory stalls.
func (lr LayerResult) StalledCycles() int64 { return lr.Compute.Cycles + lr.StallCycles }

// RunResult aggregates a whole topology.
type RunResult struct {
	// Config used for the run.
	Config config.Config
	// Topology that was executed. For graph runs it is synthesized from
	// the deterministic execution order (one entry per node), so every
	// report renders uniformly.
	Topology topology.Topology
	// Graph is the operator graph a SimulateGraph run executed; nil for
	// flat-topology runs.
	Graph *topology.Graph
	// Layers holds one result per layer, in execution order.
	Layers []LayerResult
	// TotalCycles is the summed runtime (layers execute serially).
	TotalCycles int64
	// TotalMACs is the summed useful work.
	TotalMACs int64
	// TotalEnergy sums the per-layer breakdowns.
	TotalEnergy energy.Breakdown
}

// DRAMReads returns the network's total DRAM read words.
func (r RunResult) DRAMReads() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.Memory.DRAMReads()
	}
	return n
}

// DRAMWrites returns the network's total DRAM write words.
func (r RunResult) DRAMWrites() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.Memory.OfmapDRAMWrites
	}
	return n
}

// AvgBandwidth returns the whole-run average interface bandwidth in bytes
// per cycle.
func (r RunResult) AvgBandwidth() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64((r.DRAMReads()+r.DRAMWrites())*int64(r.Config.WordBytes)) / float64(r.TotalCycles)
}

// Simulator executes layers under one architecture configuration.
type Simulator struct {
	cfg config.Config
	opt Options
	em  energy.Model
	reg engine.Registry
	tl  timelineState
	// cache marks that Options permit replaying compute results from
	// opt.Cache; decided once at New (see cacheable in pipeline.go).
	cache bool
}

// SinkSet value keys the built-in factories deposit their per-layer probes
// under.
const (
	dramProbeKey  = "core.dram"
	stallProbeKey = "core.stall"
)

// New validates the configuration and builds a Simulator.
func New(cfg config.Config, opt Options) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.DRAMBandwidth < 0 {
		return nil, fmt.Errorf("core: negative DRAM bandwidth %v", opt.DRAMBandwidth)
	}
	em := opt.Energy
	if em == (energy.Model{}) {
		em = energy.Eyeriss()
	}
	if err := em.Validate(); err != nil {
		return nil, err
	}
	if opt.DRAM != nil {
		if err := opt.DRAM.Validate(); err != nil {
			return nil, err
		}
	}

	var reg engine.Registry
	if opt.TraceDir != "" {
		reg = append(reg, engine.CSVTrace(opt.TraceDir))
	}
	if opt.DRAM != nil {
		reg = append(reg, dramSink(*opt.DRAM))
	}
	if opt.DRAMBandwidth > 0 {
		reg = append(reg, stallSink(opt.DRAMBandwidth))
	}
	reg = append(reg, opt.Sinks...)
	s := &Simulator{cfg: cfg, opt: opt, em: em, reg: reg, cache: cacheable(opt)}
	if opt.Timeline != nil {
		s.reg = append(s.reg, s.timelineSink())
	}
	return s, nil
}

// Config returns the simulator's architecture configuration.
func (s *Simulator) Config() config.Config { return s.cfg }

// dramSink builds a fresh DRAM timing model per layer, replays both DRAM
// streams through it and deposits it for stats collection.
func dramSink(cfg dram.Config) engine.Factory {
	return func(job engine.Job, set *engine.SinkSet) error {
		m, err := dram.New(cfg)
		if err != nil {
			return err
		}
		set.Attach(engine.DRAMRead, m)
		set.Attach(engine.DRAMWrite, m)
		set.Put(dramProbeKey, m)
		return nil
	}
}

// stallSink builds a fresh bounded-link stall analyzer per layer over both
// DRAM streams.
func stallSink(wordsPerCycle float64) engine.Factory {
	return func(job engine.Job, set *engine.SinkSet) error {
		a := trace.NewStallAnalyzer(wordsPerCycle)
		set.Attach(engine.DRAMRead, a)
		set.Attach(engine.DRAMWrite, a)
		set.Put(stallProbeKey, a)
		return nil
	}
}

// SimulateLayer runs one layer through the map/sinks/compute/analyze
// pipeline (see pipeline.go): mapping and cache lookup, live trace
// consumers, the systolic and memory simulation, DRAM timing, stall and
// energy accounting.
func (s *Simulator) SimulateLayer(l topology.Layer) (LayerResult, error) {
	return s.simulateLayer(0, l)
}

// SimulateNode runs one operator-graph node through the same pipeline;
// vector-shaped nodes take the vector-unit compute path.
func (s *Simulator) SimulateNode(n topology.Node) (LayerResult, error) {
	return s.simulateNode(0, n)
}

func (s *Simulator) simulateLayer(index int, l topology.Layer) (LayerResult, error) {
	return s.simulateNode(index, topology.NodeOf(l))
}

func (s *Simulator) simulateNode(index int, n topology.Node) (LayerResult, error) {
	if ctx := s.opt.Context; ctx != nil {
		select {
		case <-ctx.Done():
			return LayerResult{}, ctx.Err()
		default:
		}
	}
	l := n.Layer
	l.Name = n.Name
	ctx := &LayerContext{Index: index, Node: n, Layer: l}
	defer ctx.close()
	for _, st := range pipeline {
		if st.liveOnly && ctx.CacheHit {
			continue
		}
		stop := s.opt.Obs.Time("core.layer." + st.name + "_seconds")
		err := st.fn(s, ctx)
		stop()
		if err != nil {
			log.Default().Error("core", "stage failed",
				"layer", l.Name, "index", index, "stage", st.name, "error", err)
			return LayerResult{}, err
		}
		if lg := log.Default(); lg.Enabled(log.LevelDebug) {
			lg.Debug("core", "stage done",
				"layer", l.Name, "index", index, "stage", st.name, "cache_hit", ctx.CacheHit)
		}
	}
	return ctx.Result, nil
}

// workers resolves the effective layer-level parallelism; see
// Options.Workers.
func (s *Simulator) workers() int {
	if s.opt.Workers != 0 {
		return s.opt.Workers
	}
	if s.opt.Memory.DRAMRead != nil || s.opt.Memory.DRAMWrite != nil {
		return 1
	}
	return 0
}

// Simulate runs every layer of the topology — concurrently up to
// Options.Workers, with results joined in layer order — and aggregates the
// serialized execution totals.
func (s *Simulator) Simulate(topo topology.Topology) (RunResult, error) {
	stop := s.opt.Obs.Phase("core.validate")
	err := topo.Validate()
	stop()
	if err != nil {
		return RunResult{}, err
	}
	s.opt.Progress.Start(len(topo.Layers))
	obs := s.opt.Obs
	spanSink := obs.SpanSink()
	var tlSpans *obsv.SpanRecorder
	if s.opt.Timeline != nil {
		tlSpans = &obsv.SpanRecorder{}
		spanSink = obsv.TeeSpans(spanSink, tlSpans)
	}
	stop = obs.Phase("core.simulate")
	layers, err := engine.RunObserved(s.workers(), len(topo.Layers), spanSink,
		func(i int) (lr LayerResult, err error) {
			// A panicking layer fails the run with its index and name; the
			// engine's own recovery would only know the index.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("core: layer %d %q panicked: %v", i, topo.Layers[i].Name, r)
				}
			}()
			var t0 time.Time
			if obs.Enabled() {
				t0 = time.Now()
			}
			lr, err = s.simulateLayer(i, topo.Layers[i])
			if err != nil {
				return LayerResult{}, fmt.Errorf("core: layer %q: %w", topo.Layers[i].Name, err)
			}
			obs.ObserveLayer(i, topo.Layers[i].Name, time.Since(t0))
			s.opt.Progress.Step(topo.Layers[i].Name)
			return lr, nil
		})
	stop()
	if err != nil {
		return RunResult{}, err
	}
	defer obs.Phase("core.aggregate")()
	run := RunResult{Config: s.cfg, Topology: topo, Layers: layers}
	// The modeled hardware executes layers serially: cumulative cycle
	// offsets and totals are computed after the parallel join, in layer
	// order, so they match a sequential run exactly.
	for i := range run.Layers {
		lr := &run.Layers[i]
		lr.StartCycle = run.TotalCycles
		run.TotalCycles += lr.Compute.Cycles
		run.TotalMACs += lr.Compute.MACs
		run.TotalEnergy = run.TotalEnergy.Add(lr.Energy)
	}
	if s.opt.Timeline != nil {
		s.emitTimeline(run, tlSpans.Spans())
	}
	return run, nil
}
