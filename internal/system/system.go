// Package system models the accelerator's integration into a host system,
// following Sec. II-B and Fig. 1 of the paper: the accelerator hangs off the
// system interconnect as a slave device with memory-mapped registers; the
// CPU (bus master) writes a task descriptor and rings a doorbell, context
// switches away, and is notified on completion, after which it reads back
// result registers. The cost of integration shows up as bus transactions
// and as the accelerator's DRAM-interface traffic.
package system

import (
	"fmt"

	"scalesim/internal/core"
	"scalesim/internal/topology"
)

// Register offsets of the accelerator's memory-mapped register file.
const (
	// RegCtrl: writing CtrlStart launches the job described by RegLayer.
	RegCtrl = 0x00
	// RegStatus: StatusIdle, StatusBusy or StatusDone.
	RegStatus = 0x04
	// RegLayer selects the topology layer index of the next job.
	RegLayer = 0x08
	// RegIntAck: writing 1 acknowledges the completion interrupt.
	RegIntAck = 0x0C
	// RegCyclesLo / RegCyclesHi report the last job's runtime.
	RegCyclesLo = 0x10
	RegCyclesHi = 0x14
)

// Control and status values.
const (
	CtrlStart  = 1
	StatusIdle = 0
	StatusBusy = 1
	StatusDone = 2
)

// Slave is a device addressable over the bus.
type Slave interface {
	ReadReg(offset uint32) uint32
	WriteReg(offset uint32, value uint32)
}

// Bus is the system interconnect: a single master reaching one slave range,
// with a fixed cycle cost per register transaction. It keeps the system
// clock.
type Bus struct {
	slave            Slave
	transactionCost  int64
	clock            int64
	transactionCount int64
}

// NewBus connects a slave with the given per-transaction cycle cost.
func NewBus(slave Slave, transactionCost int64) (*Bus, error) {
	if slave == nil {
		return nil, fmt.Errorf("system: nil slave")
	}
	if transactionCost < 1 {
		return nil, fmt.Errorf("system: transaction cost %d must be >= 1", transactionCost)
	}
	return &Bus{slave: slave, transactionCost: transactionCost}, nil
}

// Read performs a register read, advancing the clock.
func (b *Bus) Read(offset uint32) uint32 {
	b.clock += b.transactionCost
	b.transactionCount++
	return b.slave.ReadReg(offset)
}

// Write performs a register write, advancing the clock.
func (b *Bus) Write(offset, value uint32) {
	b.clock += b.transactionCost
	b.transactionCount++
	b.slave.WriteReg(offset, value)
}

// Advance moves the clock forward (the CPU doing other work, or waiting).
func (b *Bus) Advance(cycles int64) {
	if cycles > 0 {
		b.clock += cycles
	}
}

// Clock returns the current cycle.
func (b *Bus) Clock() int64 { return b.clock }

// Transactions returns the number of register transactions so far.
func (b *Bus) Transactions() int64 { return b.transactionCount }

// Accelerator is the simulated device: a register file in front of the
// cycle-accurate simulator. Jobs run when the doorbell is rung; completion
// raises the interrupt line.
type Accelerator struct {
	sim  *core.Simulator
	topo topology.Topology

	status     uint32
	layerIndex uint32
	interrupt  bool
	lastCycles int64
	lastErr    error
	results    []core.LayerResult
}

// NewAccelerator wraps a simulator and a topology as a bus slave.
func NewAccelerator(sim *core.Simulator, topo topology.Topology) (*Accelerator, error) {
	if sim == nil {
		return nil, fmt.Errorf("system: nil simulator")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return &Accelerator{sim: sim, topo: topo}, nil
}

// ReadReg implements Slave.
func (a *Accelerator) ReadReg(offset uint32) uint32 {
	switch offset {
	case RegStatus:
		return a.status
	case RegLayer:
		return a.layerIndex
	case RegCyclesLo:
		return uint32(a.lastCycles)
	case RegCyclesHi:
		return uint32(a.lastCycles >> 32)
	}
	return 0
}

// WriteReg implements Slave. Writing CtrlStart to RegCtrl runs the selected
// layer to completion (the accelerator is autonomous once kicked; the bus
// master sees the passage of time via Interrupt and WaitCycles).
func (a *Accelerator) WriteReg(offset, value uint32) {
	switch offset {
	case RegLayer:
		a.layerIndex = value
	case RegIntAck:
		if value != 0 {
			a.interrupt = false
			a.status = StatusIdle
		}
	case RegCtrl:
		if value != CtrlStart {
			return
		}
		a.run()
	}
}

func (a *Accelerator) run() {
	if int(a.layerIndex) >= len(a.topo.Layers) {
		a.lastErr = fmt.Errorf("system: layer index %d out of range", a.layerIndex)
		a.status = StatusIdle
		return
	}
	a.status = StatusBusy
	lr, err := a.sim.SimulateLayer(a.topo.Layers[a.layerIndex])
	if err != nil {
		a.lastErr = err
		a.status = StatusIdle
		return
	}
	a.results = append(a.results, lr)
	a.lastCycles = lr.Compute.Cycles
	a.status = StatusDone
	a.interrupt = true
}

// Interrupt reports whether the completion line is raised.
func (a *Accelerator) Interrupt() bool { return a.interrupt }

// Err returns the last job submission error, if any.
func (a *Accelerator) Err() error { return a.lastErr }

// Results returns the completed jobs' results in completion order.
func (a *Accelerator) Results() []core.LayerResult { return a.results }

// TaskRecord is the host-visible account of one offloaded job.
type TaskRecord struct {
	// Layer is the layer name.
	Layer string
	// SubmitCycle is the bus clock when the doorbell was rung.
	SubmitCycle int64
	// CompleteCycle is the bus clock when the CPU observed completion.
	CompleteCycle int64
	// AccelCycles is the accelerator's reported runtime.
	AccelCycles int64
	// DRAMWords is the interface traffic the job generated.
	DRAMWords int64
}

// Host is the bus master running the offload loop.
type Host struct {
	bus   *Bus
	accel *Accelerator
}

// NewHost wires a CPU to an accelerator over a new bus.
func NewHost(accel *Accelerator, busCost int64) (*Host, error) {
	bus, err := NewBus(accel, busCost)
	if err != nil {
		return nil, err
	}
	return &Host{bus: bus, accel: accel}, nil
}

// Bus exposes the interconnect (for clock and transaction queries).
func (h *Host) Bus() *Bus { return h.bus }

// OffloadAll runs every layer of the accelerator's topology through the
// offload protocol and returns one record per task.
func (h *Host) OffloadAll() ([]TaskRecord, error) {
	records := make([]TaskRecord, 0, len(h.accel.topo.Layers))
	for i, l := range h.accel.topo.Layers {
		// Program the descriptor and ring the doorbell.
		h.bus.Write(RegLayer, uint32(i))
		submit := h.bus.Clock()
		h.bus.Write(RegCtrl, CtrlStart)
		if err := h.accel.Err(); err != nil {
			return nil, err
		}
		// The accelerator computed for lastCycles while the CPU was away.
		h.bus.Advance(h.accel.lastCycles)
		if !h.accel.Interrupt() {
			return nil, fmt.Errorf("system: no completion interrupt for %q", l.Name)
		}
		// Interrupt service: read status and runtime, then acknowledge.
		if st := h.bus.Read(RegStatus); st != StatusDone {
			return nil, fmt.Errorf("system: status %d after interrupt", st)
		}
		lo := int64(h.bus.Read(RegCyclesLo))
		hi := int64(h.bus.Read(RegCyclesHi))
		h.bus.Write(RegIntAck, 1)

		res := h.accel.Results()[len(h.accel.Results())-1]
		records = append(records, TaskRecord{
			Layer:         l.Name,
			SubmitCycle:   submit,
			CompleteCycle: h.bus.Clock(),
			AccelCycles:   hi<<32 | lo,
			DRAMWords:     res.Memory.DRAMAccesses(),
		})
	}
	return records, nil
}
