package system

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/core"
	"scalesim/internal/topology"
)

func newAccel(t *testing.T) *Accelerator {
	t.Helper()
	sim, err := core.New(config.New().WithArray(8, 8).WithSRAM(2, 2, 1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccelerator(sim, topology.TinyNet())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewBus(nil, 1); err == nil {
		t.Error("NewBus accepted nil slave")
	}
	a := newAccel(t)
	if _, err := NewBus(a, 0); err == nil {
		t.Error("NewBus accepted zero cost")
	}
	if _, err := NewAccelerator(nil, topology.TinyNet()); err == nil {
		t.Error("NewAccelerator accepted nil simulator")
	}
	sim, _ := core.New(config.New(), core.Options{})
	if _, err := NewAccelerator(sim, topology.Topology{Name: "e"}); err == nil {
		t.Error("NewAccelerator accepted empty topology")
	}
}

func TestBusAccounting(t *testing.T) {
	a := newAccel(t)
	bus, err := NewBus(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bus.Read(RegStatus) != StatusIdle {
		t.Error("initial status not idle")
	}
	bus.Write(RegLayer, 1)
	if got := bus.Read(RegLayer); got != 1 {
		t.Errorf("RegLayer = %d", got)
	}
	if bus.Transactions() != 3 || bus.Clock() != 9 {
		t.Errorf("transactions/clock = %d/%d", bus.Transactions(), bus.Clock())
	}
	bus.Advance(100)
	bus.Advance(-5) // ignored
	if bus.Clock() != 109 {
		t.Errorf("Clock = %d", bus.Clock())
	}
	if bus.Read(0xFF) != 0 {
		t.Error("unknown register read nonzero")
	}
}

func TestOffloadProtocol(t *testing.T) {
	a := newAccel(t)
	host, err := NewHost(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	records, err := host.OffloadAll()
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.TinyNet()
	if len(records) != len(topo.Layers) {
		t.Fatalf("records = %d", len(records))
	}
	var prevComplete int64
	for i, r := range records {
		if r.Layer != topo.Layers[i].Name {
			t.Errorf("record %d layer %q", i, r.Layer)
		}
		if r.SubmitCycle < prevComplete {
			t.Errorf("task %d submitted before previous completed", i)
		}
		if r.CompleteCycle <= r.SubmitCycle {
			t.Errorf("task %d: complete %d <= submit %d", i, r.CompleteCycle, r.SubmitCycle)
		}
		// The offload wall time covers at least the accelerator runtime.
		if r.CompleteCycle-r.SubmitCycle < r.AccelCycles {
			t.Errorf("task %d: wall %d < accel %d", i, r.CompleteCycle-r.SubmitCycle, r.AccelCycles)
		}
		if r.AccelCycles <= 0 || r.DRAMWords <= 0 {
			t.Errorf("task %d: empty metrics %+v", i, r)
		}
		prevComplete = r.CompleteCycle
	}
	// Accelerator runtimes must match a direct simulation.
	sim, _ := core.New(config.New().WithArray(8, 8).WithSRAM(2, 2, 1), core.Options{})
	run, err := sim.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range records {
		if r.AccelCycles != run.Layers[i].Compute.Cycles {
			t.Errorf("task %d: accel cycles %d != direct %d",
				i, r.AccelCycles, run.Layers[i].Compute.Cycles)
		}
	}
	if a.Interrupt() {
		t.Error("interrupt still raised after ack")
	}
	if len(a.Results()) != len(topo.Layers) {
		t.Errorf("accelerator kept %d results", len(a.Results()))
	}
}

func TestBadLayerIndex(t *testing.T) {
	a := newAccel(t)
	bus, _ := NewBus(a, 1)
	bus.Write(RegLayer, 99)
	bus.Write(RegCtrl, CtrlStart)
	if a.Err() == nil {
		t.Error("no error for out-of-range layer")
	}
	if bus.Read(RegStatus) != StatusIdle {
		t.Error("status not idle after failed start")
	}
}

func TestNonStartCtrlIgnored(t *testing.T) {
	a := newAccel(t)
	bus, _ := NewBus(a, 1)
	bus.Write(RegCtrl, 42)
	if bus.Read(RegStatus) != StatusIdle || a.Interrupt() {
		t.Error("non-start control value had an effect")
	}
}

func TestCycleRegistersSplit64(t *testing.T) {
	a := newAccel(t)
	a.lastCycles = (3 << 32) | 7
	if a.ReadReg(RegCyclesLo) != 7 {
		t.Errorf("lo = %d", a.ReadReg(RegCyclesLo))
	}
	if a.ReadReg(RegCyclesHi) != 3 {
		t.Errorf("hi = %d", a.ReadReg(RegCyclesHi))
	}
}
