package analytical

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRuntimeAtLeastWorkBound: Eq. 4 can never beat the work bound
// MACs / (R*C) nor the fill/drain bound Eq. 1.
func TestRuntimeAtLeastWorkBound(t *testing.T) {
	f := func(sr8, sc8, t8, r8, c8 uint8) bool {
		w := m(int64(sr8)+1, int64(t8)+1, int64(sc8)+1)
		r, c := int64(r8%32)+1, int64(c8%32)+1
		got := Runtime(w, r, c)
		work := (w.MACs() + r*c - 1) / (r * c)
		return got >= work && got >= FoldRuntime(r, c, w.T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestScaleOutMonotoneInPartitions: for a fixed per-array shape, adding
// partitions along either axis never slows the workload (Eq. 5 shrinks the
// slice, Eq. 6 shrinks with it).
func TestScaleOutMonotoneInPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		w := m(int64(1+rng.Intn(2000)), int64(1+rng.Intn(200)), int64(1+rng.Intn(2000)))
		r, c := int64(1+rng.Intn(32)), int64(1+rng.Intn(32))
		pr, pc := int64(1+rng.Intn(8)), int64(1+rng.Intn(8))
		base := ScaleOutRuntime(w, pr, pc, r, c)
		if ScaleOutRuntime(w, pr+1, pc, r, c) > base {
			t.Fatalf("adding a row partition slowed %+v (%d,%d,%d,%d)", w, pr, pc, r, c)
		}
		if ScaleOutRuntime(w, pr, pc+1, r, c) > base {
			t.Fatalf("adding a column partition slowed %+v (%d,%d,%d,%d)", w, pr, pc, r, c)
		}
	}
}

// TestDivisorsProperty: every returned value divides n, the list is sorted
// and complete.
func TestDivisorsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		n := int64(1 + rng.Intn(10000))
		divs := Divisors(n)
		seen := make(map[int64]bool)
		for i, d := range divs {
			if n%d != 0 {
				t.Fatalf("Divisors(%d) contains non-divisor %d", n, d)
			}
			if i > 0 && divs[i-1] >= d {
				t.Fatalf("Divisors(%d) not strictly sorted", n)
			}
			seen[d] = true
		}
		for d := int64(1); d <= n; d++ {
			if n%d == 0 && !seen[d] {
				t.Fatalf("Divisors(%d) missing %d", n, d)
			}
		}
	}
}

// TestShapesCoverAllFactorizations: Shapes(n, 1) enumerates exactly the
// divisor pairs.
func TestShapesCoverAllFactorizations(t *testing.T) {
	for _, n := range []int64{1, 12, 64, 97, 360} {
		shapes := Shapes(n, 1)
		if len(shapes) != len(Divisors(n)) {
			t.Errorf("Shapes(%d) = %d entries, want %d", n, len(shapes), len(Divisors(n)))
		}
	}
}

// TestBestScaleUpMonotoneInBudgetDoubling: doubling a MAC budget cannot
// slow the best monolithic configuration, because every R x C of budget B
// has a 2R x C counterpart at 2B whose Eq. 4 runtime is no larger (fold
// count along rows halves or stays, fill cost grows by at most the saved
// folds for the workloads tested here).
func TestBestOverallMonotoneInBudgetDoubling(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		w := m(int64(64+rng.Intn(4000)), int64(1+rng.Intn(200)), int64(64+rng.Intn(4000)))
		for _, macs := range []int64{1 << 10, 1 << 12, 1 << 14} {
			small, ok1 := BestOverall(w, macs, 8, 0)
			large, ok2 := BestOverall(w, macs*2, 8, 0)
			if !ok1 || !ok2 {
				t.Fatal("search failed")
			}
			if large.Cycles > small.Cycles {
				t.Errorf("workload %+v: doubling %d MACs slowed best config: %d -> %d",
					w, macs, small.Cycles, large.Cycles)
			}
		}
	}
}
