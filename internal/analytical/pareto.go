package analytical

import (
	"fmt"
	"sort"

	"scalesim/internal/dataflow"
)

// Workload is one named mapping in a multi-workload optimization. Weight
// scales the workload's contribution to the global cost (e.g. its relative
// invocation frequency in deployment); zero means 1.
type Workload struct {
	Name   string
	M      dataflow.Mapping
	Weight float64
}

func (w Workload) weight() float64 {
	if w.Weight <= 0 {
		return 1
	}
	return w.Weight
}

// Candidate is one configuration considered by the pareto search, with the
// total runtime it achieves across all workloads.
type Candidate struct {
	// Config under evaluation; From names the workload whose local optimum
	// proposed it.
	Config SystemConfig
	From   string
	// TotalCycles is the weighted summed runtime over all workloads
	// (runtime is additive, Sec. IV-B).
	TotalCycles int64
	// PerWorkload holds each workload's (unweighted) runtime under this
	// configuration.
	PerWorkload []int64
}

// ParetoResult is the outcome of the Sec. IV-B heuristic.
type ParetoResult struct {
	// Best is the globally selected configuration A = argmin_a sum_w Tr(w, a).
	Best Candidate
	// Candidates lists every locally optimal configuration evaluated
	// globally, sorted fastest first.
	Candidates []Candidate
}

// ParetoSearch implements the paper's multi-workload heuristic: compute the
// runtime-optimal configuration a_k for each workload individually, then
// evaluate each candidate on every workload and pick the one minimizing the
// summed runtime. scaleOut selects whether candidates are drawn from the
// partitioned or the monolithic space.
func ParetoSearch(workloads []Workload, macs, minDim, maxParts int64, scaleOut bool) (ParetoResult, error) {
	if len(workloads) == 0 {
		return ParetoResult{}, fmt.Errorf("analytical: no workloads")
	}
	// Locally optimal candidates, deduplicated by configuration.
	seen := make(map[SystemConfig]string)
	var order []SystemConfig
	for _, w := range workloads {
		var e Eval
		var ok bool
		if scaleOut {
			e, ok = BestScaleOut(w.M, macs, minDim, maxParts)
		} else {
			e, ok = BestScaleUp(w.M, macs, minDim)
		}
		if !ok {
			return ParetoResult{}, fmt.Errorf("analytical: no feasible configuration for %q with %d MACs (minDim %d)", w.Name, macs, minDim)
		}
		if _, dup := seen[e.Config]; !dup {
			seen[e.Config] = w.Name
			order = append(order, e.Config)
		}
	}

	// Global evaluation of each candidate.
	candidates := make([]Candidate, 0, len(order))
	for _, cfg := range order {
		cand := Candidate{Config: cfg, From: seen[cfg], PerWorkload: make([]int64, len(workloads))}
		for i, w := range workloads {
			cycles := Evaluate(w.M, cfg).Cycles
			cand.PerWorkload[i] = cycles
			cand.TotalCycles += int64(float64(cycles) * w.weight())
		}
		candidates = append(candidates, cand)
	}
	sortCandidates(candidates)
	return ParetoResult{Best: candidates[0], Candidates: candidates}, nil
}

func sortCandidates(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].TotalCycles < cands[j].TotalCycles
	})
}

// NormalizedLoss returns each candidate's total runtime relative to the
// best candidate (the y-axis of Figs. 13 and 14).
func (r ParetoResult) NormalizedLoss() []float64 {
	out := make([]float64, len(r.Candidates))
	best := float64(r.Best.TotalCycles)
	for i, c := range r.Candidates {
		out[i] = float64(c.TotalCycles) / best
	}
	return out
}
