package analytical

import (
	"math"
	"sort"

	"scalesim/internal/dataflow"
)

// BandPoint is one candidate of an ε-band cut: a design point's hardware
// cost (its MAC count) and its analytically modeled runtime. The two axes
// are the pareto objectives of the paper's design-space methodology —
// faster at equal silicon, or equal speed for less silicon.
type BandPoint struct {
	MACs, Cycles int64
}

// EpsilonBand marks every point within a factor (1+eps) of the
// (MACs, Cycles) pareto front: point i survives iff no point j with
// MACs_j <= MACs_i achieves Cycles_j * (1+eps) < Cycles_i. With eps == 0
// the band is exactly the pareto front (including ties); growing eps
// widens it monotonically. The mask is returned in pts order, reusing keep
// when it has capacity, and the input is not reordered. Negative eps is
// treated as zero.
//
// The cut is what makes analytical pre-filtering safe: the first-order
// model is provably exact only for stall-free runs, so a sweep keeps not
// just the modeled front but everything within the ε slack, and the
// cycle-accurate refinement stage then measures the model's actual error
// over the band.
func EpsilonBand(pts []BandPoint, eps float64, keep []bool) []bool {
	if cap(keep) >= len(pts) {
		keep = keep[:len(pts)]
	} else {
		keep = make([]bool, len(pts))
	}
	if len(pts) == 0 {
		return keep
	}
	if eps < 0 {
		eps = 0
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.MACs != pb.MACs {
			return pa.MACs < pb.MACs
		}
		return pa.Cycles < pb.Cycles
	})
	// Sweep in ascending MAC order, tracking the best runtime achieved at
	// or below the current cost. Updating best before testing keeps the
	// front itself in the band (a front point tests against itself).
	best := int64(math.MaxInt64)
	slack := 1 + eps
	for _, i := range order {
		if c := pts[i].Cycles; c < best {
			best = c
		}
		keep[i] = float64(pts[i].Cycles) <= slack*float64(best)
	}
	return keep
}

// AccumRuntimes adds weight * Runtime(m, shape) to dst for every shape:
// the batched tier-1 evaluator of a design-space search. dst and shapes
// must have equal length. A workload's total stall-free runtime over a
// shape grid is the sum of one AccumRuntimes call per distinct layer
// mapping, weighted by the mapping's repeat count — pure arithmetic over
// preallocated slices, so scoring millions of configurations allocates
// nothing.
func AccumRuntimes(dst []int64, m dataflow.Mapping, weight int64, shapes []Shape) {
	_ = dst[:len(shapes)]
	for i, s := range shapes {
		dst[i] += weight * Runtime(m, s.R, s.C)
	}
}
