package analytical_test

// Property test for the paper's central exactness claim: under stall-free
// conditions (unconstrained DRAM, no edge trimming — the repo default)
// the first-order analytical model (Eqs. 1-6) is not an approximation of
// the cycle-accurate simulator but identical to it. The tiered design
// space search (internal/dse) relies on this: tier-1 scores are trusted
// to rank exactly what tier-2 would measure.

import (
	"math/rand"
	"testing"

	"scalesim/internal/analytical"
	"scalesim/internal/config"
	"scalesim/internal/core"
	"scalesim/internal/dataflow"
	"scalesim/internal/partition"
	"scalesim/internal/topology"
)

var exactDataflows = []config.Dataflow{
	config.OutputStationary, config.WeightStationary, config.InputStationary,
}

// TestRuntimeMatchesSimulator: analytical.Runtime == simulator TotalCycles
// over a randomized (array, dataflow, GEMM shape) grid.
func TestRuntimeMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		r := int64(1 + rng.Intn(24))
		c := int64(1 + rng.Intn(24))
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		df := exactDataflows[rng.Intn(len(exactDataflows))]

		layer := topology.FromGEMM("gemm", m, k, n)
		mapping := dataflow.Map(layer, df)
		want := analytical.Runtime(mapping, r, c)

		cfg := config.New().WithArray(int(r), int(c)).WithDataflow(df)
		sim, err := core.New(cfg, core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Simulate(topology.Topology{Name: "gemm", Layers: []topology.Layer{layer}})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCycles != want {
			t.Errorf("trial %d: %dx%d %s gemm %dx%dx%d: analytical %d, simulator %d",
				trial, r, c, df, m, k, n, want, res.TotalCycles)
		}
	}
}

// TestScaleOutRuntimeMatchesPartitionRun: ScaleOutRuntime (Eqs. 5-6) ==
// the scale-out executor's slowest-partition cycles across randomized
// partition grids.
func TestScaleOutRuntimeMatchesPartitionRun(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for trial := 0; trial < 40; trial++ {
		spec := partition.Spec{
			Parts: analytical.Partitioning{
				Pr: int64(1 + rng.Intn(3)),
				Pc: int64(1 + rng.Intn(3)),
			},
			Shape: analytical.Shape{
				R: int64(1 + rng.Intn(16)),
				C: int64(1 + rng.Intn(16)),
			},
		}
		m := 1 + rng.Intn(32)
		k := 1 + rng.Intn(32)
		n := 1 + rng.Intn(32)
		df := exactDataflows[rng.Intn(len(exactDataflows))]

		layer := topology.FromGEMM("gemm", m, k, n)
		mapping := dataflow.Map(layer, df)
		want := analytical.ScaleOutRuntime(mapping, spec.Parts.Pr, spec.Parts.Pc,
			spec.Shape.R, spec.Shape.C)

		base := config.New().WithDataflow(df)
		res, err := partition.Run(layer, base, spec, partition.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != want {
			t.Errorf("trial %d: %s %s gemm %dx%dx%d: analytical %d, partition.Run %d",
				trial, spec.Parts, spec.Shape, m, k, n, want, res.Cycles)
		}
	}
}

// TestEvaluateMatchesMonolithicSimulator: the full Evaluate path (used by
// tier-1 scoring) agrees with the simulator for 1x1 partitionings.
func TestEvaluateMatchesMonolithicSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	for trial := 0; trial < 20; trial++ {
		sc := analytical.SystemConfig{
			Parts: analytical.Partitioning{Pr: 1, Pc: 1},
			Shape: analytical.Shape{R: int64(2 + rng.Intn(14)), C: int64(2 + rng.Intn(14))},
		}
		layer := topology.FromGEMM("gemm", 1+rng.Intn(24), 1+rng.Intn(24), 1+rng.Intn(24))
		df := exactDataflows[rng.Intn(len(exactDataflows))]
		ev := analytical.Evaluate(dataflow.Map(layer, df), sc)

		cfg := config.New().WithArray(int(sc.Shape.R), int(sc.Shape.C)).WithDataflow(df)
		sim, err := core.New(cfg, core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Simulate(topology.Topology{Name: "gemm", Layers: []topology.Layer{layer}})
		if err != nil {
			t.Fatal(err)
		}
		if ev.Cycles != res.TotalCycles {
			t.Errorf("trial %d: Evaluate %d cycles, simulator %d", trial, ev.Cycles, res.TotalCycles)
		}
	}
}
