package analytical

import (
	"math/rand"
	"testing"
)

func TestEpsilonBandFrontOnly(t *testing.T) {
	pts := []BandPoint{
		{MACs: 64, Cycles: 100},  // front
		{MACs: 64, Cycles: 105},  // within 5% of the 64-MAC best
		{MACs: 128, Cycles: 80},  // front
		{MACs: 128, Cycles: 130}, // dominated by the 64-MAC best
		{MACs: 256, Cycles: 81},  // within eps of the 128-MAC best
		{MACs: 256, Cycles: 200}, // far off
	}
	keep := EpsilonBand(pts, 0, nil)
	want0 := []bool{true, false, true, false, false, false}
	for i, w := range want0 {
		if keep[i] != w {
			t.Errorf("eps=0: keep[%d] = %v, want %v", i, keep[i], w)
		}
	}
	keep = EpsilonBand(pts, 0.05, keep)
	want := []bool{true, true, true, false, true, false}
	for i, w := range want {
		if keep[i] != w {
			t.Errorf("eps=0.05: keep[%d] = %v, want %v", i, keep[i], w)
		}
	}
}

// TestEpsilonBandProperties: the band always contains the global optimum,
// every pareto-front point, and is monotone in eps.
func TestEpsilonBandProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]BandPoint, n)
		for i := range pts {
			pts[i] = BandPoint{
				MACs:   int64(1 + rng.Intn(20)*16),
				Cycles: int64(1 + rng.Intn(10000)),
			}
		}
		small := EpsilonBand(pts, 0.01, nil)
		large := EpsilonBand(pts, 0.5, nil)
		for i := range pts {
			if small[i] && !large[i] {
				t.Fatalf("trial %d: point %d in eps=0.01 band but not eps=0.5", trial, i)
			}
			// Pareto-front membership: nothing cheaper-or-equal is strictly
			// faster. Front points must be kept at every eps.
			front := true
			for j := range pts {
				if pts[j].MACs <= pts[i].MACs && pts[j].Cycles < pts[i].Cycles {
					front = false
					break
				}
			}
			if front && !small[i] {
				t.Fatalf("trial %d: pareto-front point %d cut at eps=0.01", trial, i)
			}
			// Cut points are justified: some cheaper-or-equal point is more
			// than (1+eps) faster.
			if !large[i] {
				justified := false
				for j := range pts {
					if pts[j].MACs <= pts[i].MACs && float64(pts[j].Cycles)*1.5 < float64(pts[i].Cycles) {
						justified = true
						break
					}
				}
				if !justified {
					t.Fatalf("trial %d: point %d cut without a dominating point", trial, i)
				}
			}
		}
	}
}

func TestAccumRuntimes(t *testing.T) {
	m1 := m(100, 30, 40)
	m2 := m(7, 9, 11)
	shapes := []Shape{{4, 4}, {8, 16}, {32, 8}}
	dst := make([]int64, len(shapes))
	AccumRuntimes(dst, m1, 3, shapes)
	AccumRuntimes(dst, m2, 1, shapes)
	for i, s := range shapes {
		want := 3*Runtime(m1, s.R, s.C) + Runtime(m2, s.R, s.C)
		if dst[i] != want {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestAppendVariantsMatch(t *testing.T) {
	for _, n := range []int64{1, 2, 12, 64, 97, 360, 1024, 720720} {
		if got, want := AppendDivisors(nil, n), Divisors(n); !equalInt64(got, want) {
			t.Errorf("AppendDivisors(nil, %d) = %v, want %v", n, got, want)
		}
		// Appending into a preloaded buffer preserves the prefix.
		pre := []int64{-1, -2}
		got := AppendDivisors(pre, n)
		if got[0] != -1 || got[1] != -2 || !equalInt64(got[2:], Divisors(n)) {
			t.Errorf("AppendDivisors(pre, %d) corrupted prefix or tail: %v", n, got)
		}
	}
	for _, macs := range []int64{16, 256, 16384} {
		for _, minDim := range []int64{1, 4} {
			got := AppendShapes(nil, macs, minDim)
			want := Shapes(macs, minDim)
			if len(got) != len(want) {
				t.Fatalf("AppendShapes(%d, %d): %d shapes, want %d", macs, minDim, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("AppendShapes(%d, %d)[%d] = %v, want %v", macs, minDim, i, got[i], want[i])
				}
			}
			gotC := AppendConfigs(nil, macs, minDim, 16)
			wantC := EnumerateConfigs(macs, minDim, 16)
			if len(gotC) != len(wantC) {
				t.Fatalf("AppendConfigs(%d, %d): %d configs, want %d", macs, minDim, len(gotC), len(wantC))
			}
			for i := range gotC {
				if gotC[i] != wantC[i] {
					t.Errorf("AppendConfigs(%d, %d)[%d] = %v, want %v", macs, minDim, i, gotC[i], wantC[i])
				}
			}
		}
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkAppendDivisors pins the append-into-caller path allocation-flat
// when the destination is reused.
func BenchmarkAppendDivisors(b *testing.B) {
	buf := make([]int64, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendDivisors(buf[:0], 16384)
	}
	_ = buf
}

func BenchmarkAppendShapes(b *testing.B) {
	buf := make([]Shape, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendShapes(buf[:0], 16384, 4)
	}
	_ = buf
}

func BenchmarkAppendConfigs(b *testing.B) {
	buf := make([]SystemConfig, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendConfigs(buf[:0], 16384, 4, 0)
	}
	_ = buf
}

// BenchmarkAccumRuntimes is the tier-1 inner loop: one mapping scored
// across a preallocated shape grid. Zero allocations.
func BenchmarkAccumRuntimes(b *testing.B) {
	shapes := AppendShapes(nil, 16384, 1)
	for len(shapes) < 4096 {
		shapes = append(shapes, shapes...)
	}
	dst := make([]int64, len(shapes))
	w := m(4096, 512, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AccumRuntimes(dst, w, 1, shapes)
	}
	b.ReportMetric(float64(len(shapes))*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
}
