package analytical

import (
	"math/rand"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/dataflow"
	"scalesim/internal/systolic"
	"scalesim/internal/topology"
)

func m(sr, t, sc int64) dataflow.Mapping {
	return dataflow.Mapping{Dataflow: config.OutputStationary, Sr: sr, Sc: sc, T: t}
}

func TestEquations(t *testing.T) {
	w := m(16, 12, 5)
	if got := MinRuntime(w); got != 2*16+5+12-2 {
		t.Errorf("MinRuntime = %d", got)
	}
	if got := FoldRuntime(4, 3, 12); got != 2*4+3+12-2 {
		t.Errorf("FoldRuntime = %d", got)
	}
	// Eq.4: folds ceil(16/4)=4, ceil(5/3)=2.
	if got := Runtime(w, 4, 3); got != FoldRuntime(4, 3, 12)*4*2 {
		t.Errorf("Runtime = %d", got)
	}
	// Exactly fitting array reduces Eq.4 to Eq.1.
	if Runtime(w, 16, 5) != MinRuntime(w) {
		t.Error("exact-fit Runtime != MinRuntime")
	}
	// Eq.5.
	pw := PartitionWorkload(w, 2, 2)
	if pw.Sr != 8 || pw.Sc != 3 || pw.T != 12 {
		t.Errorf("PartitionWorkload = %+v", pw)
	}
	// Eq.6 equals Eq.4 of the partition workload.
	if ScaleOutRuntime(w, 2, 2, 4, 3) != Runtime(pw, 4, 3) {
		t.Error("ScaleOutRuntime mismatch")
	}
}

// TestRuntimeMatchesSimulator: the analytical model and the cycle-accurate
// simulator agree exactly on stall-free runtime (the design invariant).
func TestRuntimeMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		l := topology.FromGEMM("g", 1+rng.Intn(100), 1+rng.Intn(100), 1+rng.Intn(100))
		df := config.Dataflows[rng.Intn(3)]
		r, c := 1+rng.Intn(16), 1+rng.Intn(16)
		cfg := config.New().WithArray(r, c).WithDataflow(df)
		sim, err := systolic.Estimate(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mm := dataflow.Map(l, df)
		if got := Runtime(mm, int64(r), int64(c)); got != sim.Cycles {
			t.Fatalf("layer %v %v on %dx%d: analytical %d != simulated %d",
				l.Name, df, r, c, got, sim.Cycles)
		}
	}
}

func TestDivisors(t *testing.T) {
	cases := map[int64][]int64{
		1:  {1},
		12: {1, 2, 3, 4, 6, 12},
		16: {1, 2, 4, 8, 16},
		17: {1, 17},
	}
	for n, want := range cases {
		got := Divisors(n)
		if len(got) != len(want) {
			t.Errorf("Divisors(%d) = %v", n, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Divisors(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
	if Divisors(0) != nil || Divisors(-4) != nil {
		t.Error("Divisors of non-positive n should be nil")
	}
}

func TestShapes(t *testing.T) {
	shapes := Shapes(64, 1)
	if len(shapes) != 7 { // 1x64 ... 64x1
		t.Errorf("Shapes(64,1) has %d entries", len(shapes))
	}
	for _, s := range shapes {
		if s.MACs() != 64 {
			t.Errorf("shape %v has %d MACs", s, s.MACs())
		}
	}
	shapes8 := Shapes(64, 8)
	if len(shapes8) != 1 || shapes8[0] != (Shape{8, 8}) {
		t.Errorf("Shapes(64,8) = %v", shapes8)
	}
	if got := Shapes(64, 16); got != nil {
		t.Errorf("Shapes(64,16) = %v, want none", got)
	}
}

func TestEnumerateConfigs(t *testing.T) {
	configs := EnumerateConfigs(256, 8, 0)
	seen := make(map[string]bool)
	for _, c := range configs {
		if c.MACs() != 256 {
			t.Fatalf("config %v has %d MACs", c, c.MACs())
		}
		if c.Shape.R < 8 || c.Shape.C < 8 {
			t.Fatalf("config %v violates minDim", c)
		}
		key := c.String()
		if seen[key] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[key] = true
	}
	// 256 MACs, minDim 8: per-partition sizes 64 (8x8), 128 (8x16, 16x8), 256
	// (8x32,16x16,32x8). Partitions: P=4 (1x4,2x2,4x1) x 1 shape, P=2
	// (1x2,2x1) x 2 shapes, P=1 x 3 shapes -> 3 + 4 + 3 = 10.
	if len(configs) != 10 {
		t.Errorf("len(configs) = %d, want 10", len(configs))
	}

	limited := EnumerateConfigs(256, 8, 2)
	for _, c := range limited {
		if c.Parts.Count() > 2 {
			t.Errorf("maxParts violated: %v", c)
		}
	}
}

func TestEvaluateUtilizationBounds(t *testing.T) {
	w := m(100, 30, 40)
	for _, c := range EnumerateConfigs(1024, 8, 0) {
		e := Evaluate(w, c)
		if e.MappingUtilization <= 0 || e.MappingUtilization > 1 {
			t.Fatalf("%v: mapping util %v", c, e.MappingUtilization)
		}
		if e.ComputeUtilization <= 0 || e.ComputeUtilization > 1 {
			t.Fatalf("%v: compute util %v", c, e.ComputeUtilization)
		}
		if e.Cycles < MinRuntime(PartitionWorkload(w, c.Parts.Pr, c.Parts.Pc)) {
			t.Fatalf("%v: cycles below the unlimited-MAC bound", c)
		}
	}
}

func TestBestScaleUpPicksOptimum(t *testing.T) {
	w := m(1000, 50, 64)
	best, ok := BestScaleUp(w, 1024, 1)
	if !ok {
		t.Fatal("no scale-up config found")
	}
	if !best.Config.Monolithic() {
		t.Fatalf("scale-up best is partitioned: %v", best.Config)
	}
	// Exhaustive check.
	for _, s := range Shapes(1024, 1) {
		if got := Runtime(w, s.R, s.C); got < best.Cycles {
			t.Fatalf("shape %v beats reported best (%d < %d)", s, got, best.Cycles)
		}
	}
	if _, ok := BestScaleUp(w, 64, 16); ok {
		t.Error("BestScaleUp found config despite impossible minDim")
	}
}

func TestBestScaleOutBeatsOrMatchesScaleUp(t *testing.T) {
	// The paper's core observation: the best partitioned configuration is
	// never slower than the best monolithic one (Fig. 10).
	workloads := []dataflow.Mapping{
		m(31999, 84, 1024), // TF0
		m(128, 4096, 2048), // GNMT0
		m(3136, 64, 256),   // a ResNet-ish conv
	}
	for _, w := range workloads {
		for _, macs := range []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
			up, okUp := BestScaleUp(w, macs, 8)
			out, okOut := BestScaleOut(w, macs, 8, 0)
			if !okUp {
				t.Fatalf("no scale-up config for %d MACs", macs)
			}
			if macs <= 64*2 && !okOut {
				continue // too small to partition under minDim
			}
			if !okOut {
				t.Fatalf("no scale-out config for %d MACs", macs)
			}
			if out.Cycles > up.Cycles {
				t.Errorf("workload %+v macs %d: best scale-out %d slower than scale-up %d",
					w, macs, out.Cycles, up.Cycles)
			}
			if out.Config.Monolithic() {
				t.Errorf("BestScaleOut returned monolithic config %v", out.Config)
			}
		}
	}
}

func TestBestOverallIsGlobalMin(t *testing.T) {
	w := m(317, 45, 129)
	best, ok := BestOverall(w, 4096, 8, 0)
	if !ok {
		t.Fatal("no config")
	}
	for _, c := range EnumerateConfigs(4096, 8, 0) {
		if e := Evaluate(w, c); e.Cycles < best.Cycles {
			t.Fatalf("%v beats BestOverall (%d < %d)", c, e.Cycles, best.Cycles)
		}
	}
}

func TestSortEvals(t *testing.T) {
	w := m(100, 10, 100)
	var evals []Eval
	for _, c := range EnumerateConfigs(256, 8, 0) {
		evals = append(evals, Evaluate(w, c))
	}
	SortEvals(evals)
	for i := 1; i < len(evals); i++ {
		if evals[i].Cycles < evals[i-1].Cycles {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

// TestAspectRatioMatters reproduces the Fig. 9(b-c) observation that runtime
// across aspect ratios of the same MAC budget varies by large factors.
func TestAspectRatioMatters(t *testing.T) {
	tf0 := m(31999, 84, 1024)
	var lo, hi int64
	for i, s := range Shapes(1<<14, 1) {
		cy := Runtime(tf0, s.R, s.C)
		if i == 0 || cy < lo {
			lo = cy
		}
		if i == 0 || cy > hi {
			hi = cy
		}
	}
	if float64(hi)/float64(lo) < 10 {
		t.Errorf("aspect-ratio runtime spread only %.1fx, expected order(s) of magnitude",
			float64(hi)/float64(lo))
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{16, 64}
	if s.AspectRatio() != 0.25 {
		t.Errorf("AspectRatio = %v", s.AspectRatio())
	}
	if s.String() != "16x64" {
		t.Errorf("String = %q", s.String())
	}
	p := Partitioning{2, 4}
	if p.Count() != 8 || p.String() != "2x4" {
		t.Errorf("Partitioning helpers: %d %q", p.Count(), p.String())
	}
	c := SystemConfig{Parts: p, Shape: s}
	if c.MACs() != 8*1024 || c.Monolithic() {
		t.Errorf("SystemConfig helpers: %d %v", c.MACs(), c.Monolithic())
	}
}
