package analytical

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/dataflow"
	"scalesim/internal/topology"
)

func lmWorkloads(t *testing.T) []Workload {
	t.Helper()
	topo := topology.LanguageModels()
	out := make([]Workload, 0, len(topo.Layers))
	for _, l := range topo.Layers {
		out = append(out, Workload{Name: l.Name, M: dataflow.Map(l, config.OutputStationary)})
	}
	return out
}

func TestParetoSearchScaleUp(t *testing.T) {
	ws := lmWorkloads(t)
	res, err := ParetoSearch(ws, 1<<12, 1, 0, false)
	if err != nil {
		t.Fatalf("ParetoSearch: %v", err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// Best is the minimum over candidates.
	for _, c := range res.Candidates {
		if c.TotalCycles < res.Best.TotalCycles {
			t.Fatalf("candidate %v beats Best", c.Config)
		}
		if !c.Config.Monolithic() {
			t.Fatalf("scale-up candidate %v is partitioned", c.Config)
		}
		if len(c.PerWorkload) != len(ws) {
			t.Fatalf("candidate has %d per-workload entries", len(c.PerWorkload))
		}
		var sum int64
		for _, v := range c.PerWorkload {
			sum += v
		}
		if sum != c.TotalCycles {
			t.Fatalf("per-workload sum %d != total %d", sum, c.TotalCycles)
		}
	}
	// The best candidate must not beat any workload's own local optimum on
	// that workload (local optima are optimal).
	for i, w := range ws {
		local, _ := BestScaleUp(w.M, 1<<12, 1)
		if res.Best.PerWorkload[i] < local.Cycles {
			t.Fatalf("%s: global config beats local optimum", w.Name)
		}
	}
}

func TestParetoSearchScaleOut(t *testing.T) {
	ws := lmWorkloads(t)
	res, err := ParetoSearch(ws, 1<<14, 8, 0, true)
	if err != nil {
		t.Fatalf("ParetoSearch: %v", err)
	}
	for _, c := range res.Candidates {
		if c.Config.Monolithic() {
			t.Fatalf("scale-out candidate %v is monolithic", c.Config)
		}
	}
	loss := res.NormalizedLoss()
	if loss[0] != 1 {
		t.Errorf("best candidate loss = %v, want 1", loss[0])
	}
	for i := 1; i < len(loss); i++ {
		if loss[i] < loss[i-1] {
			t.Errorf("loss not sorted: %v", loss)
			break
		}
	}
}

func TestParetoSearchErrors(t *testing.T) {
	if _, err := ParetoSearch(nil, 1024, 8, 0, false); err == nil {
		t.Error("accepted empty workload list")
	}
	ws := lmWorkloads(t)
	if _, err := ParetoSearch(ws, 64, 16, 0, false); err == nil {
		t.Error("accepted infeasible minDim")
	}
}

func TestParetoCandidatesDeduplicated(t *testing.T) {
	// Identical workloads propose the same candidate once.
	w := Workload{Name: "a", M: m(128, 64, 128)}
	w2 := w
	w2.Name = "b"
	res, err := ParetoSearch([]Workload{w, w2}, 1024, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Errorf("candidates = %d, want 1 (deduplicated)", len(res.Candidates))
	}
	if res.Best.From != "a" {
		t.Errorf("From = %q, want first proposer", res.Best.From)
	}
}

func TestParetoWeights(t *testing.T) {
	// Two workloads with very different optima; weighting one heavily must
	// pull the global pick toward its local optimum.
	tall := Workload{Name: "tall", M: m(10000, 16, 8)}
	wide := Workload{Name: "wide", M: m(8, 16, 10000)}
	const macs, minDim = 1 << 10, 1

	tallHeavy := tall
	tallHeavy.Weight = 1000
	res, err := ParetoSearch([]Workload{tallHeavy, wide}, macs, minDim, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	localTall, _ := BestScaleUp(tall.M, macs, minDim)
	if res.Best.Config != localTall.Config {
		t.Errorf("heavy weight ignored: picked %v, want %v", res.Best.Config, localTall.Config)
	}

	wideHeavy := wide
	wideHeavy.Weight = 1000
	res2, err := ParetoSearch([]Workload{tall, wideHeavy}, macs, minDim, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	localWide, _ := BestScaleUp(wide.M, macs, minDim)
	if res2.Best.Config != localWide.Config {
		t.Errorf("heavy weight ignored: picked %v, want %v", res2.Best.Config, localWide.Config)
	}

	// Zero/negative weights default to 1: identical to unweighted.
	plain, err := ParetoSearch([]Workload{tall, wide}, macs, minDim, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	neg := []Workload{{Name: "tall", M: tall.M, Weight: -3}, {Name: "wide", M: wide.M}}
	defaulted, err := ParetoSearch(neg, macs, minDim, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best.TotalCycles != defaulted.Best.TotalCycles {
		t.Error("non-positive weight did not default to 1")
	}
}
