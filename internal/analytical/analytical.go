// Package analytical implements the paper's first-order runtime model
// (Sec. III): stall-free execution time of a workload mapping on a systolic
// array (Eqs. 1-4), the partitioned scale-out extension (Eqs. 5-6), and the
// searches built on top of it — best array shape for a MAC budget, best
// partitioning, and the multi-workload pareto selection of Sec. IV-B.
//
// Unlike the cycle-accurate core, the model ignores memory capacity and
// bandwidth; it exists to prune the design space cheaply. By construction
// it agrees exactly with the simulator's stall-free runtime.
package analytical

import (
	"fmt"
	"sort"

	"scalesim/internal/dataflow"
	"scalesim/internal/mathutil"
)

// MinRuntime returns Eq. 1: the fastest possible execution of a mapping,
// with an unlimited array of Sr x Sc MACs: 2*Sr + Sc + T - 2.
func MinRuntime(m dataflow.Mapping) int64 {
	return 2*m.Sr + m.Sc + m.T - 2
}

// FoldRuntime returns Eq. 3: the cycles one fold occupies an R x C array.
func FoldRuntime(r, c, t int64) int64 { return 2*r + c + t - 2 }

// Runtime returns Eq. 4: stall-free runtime of a mapping on an R x C array,
// (2R + C + T - 2) * ceil(Sr/R) * ceil(Sc/C).
func Runtime(m dataflow.Mapping, r, c int64) int64 {
	return FoldRuntime(r, c, m.T) * mathutil.CeilDiv(m.Sr, r) * mathutil.CeilDiv(m.Sc, c)
}

// PartitionWorkload returns Eq. 5: the per-partition workload of a Pr x Pc
// scale-out system. Spatial dimensions divide with ceiling so the slowest
// partition is modeled.
func PartitionWorkload(m dataflow.Mapping, pr, pc int64) dataflow.Mapping {
	return dataflow.Mapping{
		Dataflow: m.Dataflow,
		Sr:       mathutil.CeilDiv(m.Sr, pr),
		Sc:       mathutil.CeilDiv(m.Sc, pc),
		T:        m.T,
	}
}

// ScaleOutRuntime returns Eq. 6: the runtime of a Pr x Pc grid of R x C
// arrays, which is the runtime of the slowest partition.
func ScaleOutRuntime(m dataflow.Mapping, pr, pc, r, c int64) int64 {
	return Runtime(PartitionWorkload(m, pr, pc), r, c)
}

// Shape is one systolic array's dimensions.
type Shape struct {
	R, C int64
}

// MACs returns R*C.
func (s Shape) MACs() int64 { return s.R * s.C }

// AspectRatio returns R/C as a float.
func (s Shape) AspectRatio() float64 { return float64(s.R) / float64(s.C) }

func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.R, s.C) }

// Partitioning is the grid of partitions of a scale-out system; 1x1 is the
// monolithic (scale-up) case.
type Partitioning struct {
	Pr, Pc int64
}

// Count returns the number of partitions.
func (p Partitioning) Count() int64 { return p.Pr * p.Pc }

func (p Partitioning) String() string { return fmt.Sprintf("%dx%d", p.Pr, p.Pc) }

// SystemConfig is one point of the Fig. 9(a) search space: a partition grid
// of identical arrays.
type SystemConfig struct {
	Parts Partitioning
	Shape Shape
}

// MACs returns the total MAC count of the system.
func (c SystemConfig) MACs() int64 { return c.Parts.Count() * c.Shape.MACs() }

// Monolithic reports whether the configuration is a single array.
func (c SystemConfig) Monolithic() bool { return c.Parts.Count() == 1 }

func (c SystemConfig) String() string {
	return fmt.Sprintf("parts %s of %s", c.Parts, c.Shape)
}

// Eval is an analytically evaluated configuration.
type Eval struct {
	Config SystemConfig
	// Cycles is the stall-free runtime (Eq. 4 / Eq. 6).
	Cycles int64
	// MappingUtilization is the mapped-PE fraction of the slowest
	// partition's array over its folds.
	MappingUtilization float64
	// ComputeUtilization is workload MACs / (system MACs * cycles).
	ComputeUtilization float64
}

// Evaluate applies the analytical model to one configuration.
func Evaluate(m dataflow.Mapping, c SystemConfig) Eval {
	part := PartitionWorkload(m, c.Parts.Pr, c.Parts.Pc)
	cycles := Runtime(part, c.Shape.R, c.Shape.C)
	foldsR := mathutil.CeilDiv(part.Sr, c.Shape.R)
	foldsC := mathutil.CeilDiv(part.Sc, c.Shape.C)
	mapped := float64(part.Sr*part.Sc) /
		float64(c.Shape.R*c.Shape.C*foldsR*foldsC)
	return Eval{
		Config:             c,
		Cycles:             cycles,
		MappingUtilization: mapped,
		ComputeUtilization: float64(m.MACs()) / (float64(c.MACs()) * float64(cycles)),
	}
}

// Divisors returns the positive divisors of n in ascending order.
func Divisors(n int64) []int64 {
	return AppendDivisors(nil, n)
}

// AppendDivisors appends the positive divisors of n to dst in ascending
// order and returns the extended slice. With sufficient capacity in dst it
// allocates nothing, so enumeration loops over millions of candidates can
// reuse one buffer.
func AppendDivisors(dst []int64, n int64) []int64 {
	if n < 1 {
		return dst
	}
	// First pass: the small divisors (d*d <= n) in ascending order.
	start := len(dst)
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			dst = append(dst, d)
		}
	}
	// Second pass: walk the small divisors backwards and append their
	// cofactors, which come out ascending. Reading dst[start:] while
	// appending is safe — appends only grow past the region being read.
	for i := len(dst) - 1; i >= start; i-- {
		d := dst[i]
		if co := n / d; co != d {
			dst = append(dst, co)
		}
	}
	return dst
}

// Shapes enumerates every R x C factorization of macs with both dimensions
// at least minDim, in ascending R.
func Shapes(macs, minDim int64) []Shape {
	return AppendShapes(nil, macs, minDim)
}

// AppendShapes appends every qualifying factorization of macs to dst and
// returns the extended slice; allocation-free when dst has capacity, save
// for a small divisor scratch buffer amortized by the runtime's append
// growth. Ordering matches Shapes.
func AppendShapes(dst []Shape, macs, minDim int64) []Shape {
	if minDim < 1 {
		minDim = 1
	}
	var scratch [64]int64
	for _, r := range AppendDivisors(scratch[:0], macs) {
		c := macs / r
		if r >= minDim && c >= minDim {
			dst = append(dst, Shape{R: r, C: c})
		}
	}
	return dst
}

// EnumerateConfigs lists every (partitioning, shape) combination whose total
// MAC count is exactly macs, with per-array dimensions at least minDim and
// at most maxParts partitions (0 means unlimited). This is the full search
// space of Fig. 9(a).
func EnumerateConfigs(macs, minDim, maxParts int64) []SystemConfig {
	return AppendConfigs(nil, macs, minDim, maxParts)
}

// AppendConfigs appends the Fig. 9(a) search space to dst and returns the
// extended slice. Apart from dst growth it works out of stack scratch
// buffers (which spill to the heap only for budgets with more than 64
// divisors), so callers that reuse dst across MAC budgets enumerate the
// whole space allocation-flat.
func AppendConfigs(dst []SystemConfig, macs, minDim, maxParts int64) []SystemConfig {
	var partScratch, grid [64]int64
	var shapeScratch [64]Shape
	for _, p := range AppendDivisors(partScratch[:0], macs) { // p = number of partitions
		if maxParts > 0 && p > maxParts {
			continue
		}
		perPart := macs / p
		shapes := AppendShapes(shapeScratch[:0], perPart, minDim)
		if len(shapes) == 0 {
			continue
		}
		for _, pr := range AppendDivisors(grid[:0], p) {
			parts := Partitioning{Pr: pr, Pc: p / pr}
			for _, s := range shapes {
				dst = append(dst, SystemConfig{Parts: parts, Shape: s})
			}
		}
	}
	return dst
}

// better orders evaluations by runtime, breaking ties toward higher mapping
// utilization and then fewer partitions (cheaper to build).
func better(a, b Eval) bool {
	if a.Cycles != b.Cycles {
		return a.Cycles < b.Cycles
	}
	if a.MappingUtilization != b.MappingUtilization {
		return a.MappingUtilization > b.MappingUtilization
	}
	return a.Config.Parts.Count() < b.Config.Parts.Count()
}

// BestScaleUp returns the fastest monolithic configuration for the MAC
// budget, or false if no shape satisfies minDim.
func BestScaleUp(m dataflow.Mapping, macs, minDim int64) (Eval, bool) {
	var best Eval
	found := false
	for _, s := range Shapes(macs, minDim) {
		e := Evaluate(m, SystemConfig{Parts: Partitioning{1, 1}, Shape: s})
		if !found || better(e, best) {
			best, found = e, true
		}
	}
	return best, found
}

// BestScaleOut returns the fastest partitioned (P > 1) configuration for
// the MAC budget, or false if none exists under the constraints.
func BestScaleOut(m dataflow.Mapping, macs, minDim, maxParts int64) (Eval, bool) {
	var best Eval
	found := false
	for _, c := range EnumerateConfigs(macs, minDim, maxParts) {
		if c.Monolithic() {
			continue
		}
		e := Evaluate(m, c)
		if !found || better(e, best) {
			best, found = e, true
		}
	}
	return best, found
}

// BestOverall returns the fastest configuration, monolithic or partitioned.
func BestOverall(m dataflow.Mapping, macs, minDim, maxParts int64) (Eval, bool) {
	var best Eval
	found := false
	for _, c := range EnumerateConfigs(macs, minDim, maxParts) {
		e := Evaluate(m, c)
		if !found || better(e, best) {
			best, found = e, true
		}
	}
	return best, found
}

// SortEvals orders evaluations fastest first using the model's tie-break.
func SortEvals(evals []Eval) {
	sort.Slice(evals, func(i, j int) bool { return better(evals[i], evals[j]) })
}
