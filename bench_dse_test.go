// Benchmarks for the tiered design-space search (internal/dse): the
// tier-1 analytical scoring throughput that makes million-config grids
// tractable, and the headline full-vs-tiered sweep comparison at equal
// grid — the "spend cycle-accurate time only where it matters" contract.
package scalesim_test

import (
	"testing"

	"scalesim/internal/analytical"
	"scalesim/internal/batch"
	"scalesim/internal/config"
	"scalesim/internal/dse"
	"scalesim/internal/topology"
)

// dseShapes enumerates every RxC factorization of the given MAC budgets —
// the paper's Fig. 9/11 aspect-ratio axis, three orders of magnitude of it.
func dseShapes(budgets ...int64) []analytical.Shape {
	var shapes []analytical.Shape
	for _, macs := range budgets {
		shapes = analytical.AppendShapes(shapes, macs, 1)
	}
	return shapes
}

// BenchmarkDSETier1 measures analytical pre-filter throughput: every
// (shape, dataflow) candidate scored against every workload, band cut
// included. The configs/s metric is the acceptance-criteria number
// (floor: 1e5 configs/s); the grid here is ~10^2 larger than the Fig. 11
// sweep's distinct array-shape set.
func BenchmarkDSETier1(b *testing.B) {
	space := dse.Space{
		Base: config.New(),
		// Highly-composite MAC budgets maximize distinct RxC
		// factorizations: ~1200 shapes, vs Fig. 11's handful.
		Arrays: dseShapes(720720, 831600, 942480, 997920, 1081080),
		Dataflows: []config.Dataflow{
			config.OutputStationary, config.WeightStationary, config.InputStationary,
		},
		Workloads: []topology.Topology{topology.TinyNet(), topology.AlexNet()},
		Epsilon:   0.1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var scored, nspop int64
	for i := 0; i < b.N; i++ {
		res, err := dse.Explore(space, dse.Options{Tier1Only: true})
		if err != nil {
			b.Fatal(err)
		}
		scored = res.Stats.Scored
		nspop = int64(res.Stats.Tier1Seconds * 1e9)
	}
	b.StopTimer()
	if nspop > 0 {
		b.ReportMetric(float64(scored)/(float64(nspop)/1e9), "configs/s")
	}
	b.ReportMetric(float64(scored), "configs")
}

// BenchmarkDSESweep pins the tentpole speedup: the same grid refined
// exhaustively (every point cycle-accurate) versus through the tiered
// search (analytical band first, simulation only inside the band).
func BenchmarkDSESweep(b *testing.B) {
	arrays := dseShapes(1 << 8) // 16x16 budget: 9 shapes
	grid := make([][2]int, len(arrays))
	for i, a := range arrays {
		grid[i] = [2]int{int(a.R), int(a.C)}
	}
	dfs := []config.Dataflow{config.OutputStationary, config.WeightStationary}
	nets := []topology.Topology{topology.TinyNet()}

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := batch.Run(batch.Spec{
				Base:       config.New(),
				Arrays:     grid,
				Dataflows:  dfs,
				Topologies: nets,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != len(grid)*len(dfs) {
				b.Fatalf("rows = %d", len(rows))
			}
		}
	})
	b.Run("tiered", func(b *testing.B) {
		space := dse.Space{
			Base:      config.New(),
			Arrays:    arrays,
			Dataflows: dfs,
			Workloads: nets,
			Epsilon:   0.1,
		}
		b.ReportAllocs()
		var refined, gridN int64
		for i := 0; i < b.N; i++ {
			res, err := dse.Explore(space, dse.Options{})
			if err != nil {
				b.Fatal(err)
			}
			refined, gridN = res.Stats.RefinedPoints, res.Stats.GridPoints
		}
		b.ReportMetric(float64(refined), "refined")
		b.ReportMetric(float64(gridN), "grid")
	})
}
