// Quickstart: simulate a small network on the default accelerator and
// print what the simulator measures. This is the five-minute tour of the
// public API: build a config, pick a workload, run it, read the results.
package main

import (
	"fmt"
	"log"

	"scalesim"
)

func main() {
	// A small accelerator: 16x16 MACs, 32+32+16 KiB of SRAM, output
	// stationary dataflow (the defaults follow the paper's Table I).
	cfg := scalesim.NewConfig().
		WithArray(16, 16).
		WithSRAM(32, 32, 16).
		WithDataflow(scalesim.OutputStationary)

	topo, ok := scalesim.BuiltInTopology("TinyNet")
	if !ok {
		log.Fatal("TinyNet not built in")
	}

	sim, err := scalesim.NewSimulator(cfg, scalesim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Simulate(topo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a %dx%d array (%s dataflow)\n\n",
		topo.Name, cfg.ArrayHeight, cfg.ArrayWidth, cfg.Dataflow)
	fmt.Printf("%-8s %10s %8s %10s %10s %12s\n",
		"layer", "cycles", "util%", "sram-rd", "dram-rd", "avg-bw B/cyc")
	for _, lr := range run.Layers {
		fmt.Printf("%-8s %10d %8.1f %10d %10d %12.3f\n",
			lr.Compute.Layer.Name,
			lr.Compute.Cycles,
			100*lr.Compute.ComputeUtilization,
			lr.Memory.IfmapSRAMReads+lr.Memory.FilterSRAMReads,
			lr.Memory.DRAMReads(),
			lr.Memory.AvgTotalBW())
	}
	fmt.Printf("\ntotal: %d cycles, %d MACs, %.2f bytes/cycle DRAM demand, %.0f energy units\n",
		run.TotalCycles, run.TotalMACs, run.AvgBandwidth(), run.TotalEnergy.Total())

	// The analytical model (Eq. 4) predicts the same stall-free runtime
	// without simulating — this is what large design-space sweeps use.
	var analytic int64
	for _, l := range topo.Layers {
		m := scalesim.Map(l, cfg.Dataflow)
		analytic += scalesim.Runtime(m, int64(cfg.ArrayHeight), int64(cfg.ArrayWidth))
	}
	fmt.Printf("analytical model predicts %d cycles (exact match: %v)\n",
		analytic, analytic == run.TotalCycles)
}
