// Provisioning: how much SRAM does a layer actually need? One simulation
// pass feeds the reuse profiler (Mattson stack distances), whose miss-ratio
// curve prices every possible buffer size at once; the pick is then
// verified with a real re-simulation at the chosen size.
package main

import (
	"fmt"
	"log"

	"scalesim"
	"scalesim/internal/core"
	"scalesim/internal/systolic"
	"scalesim/internal/tracetools"
)

func main() {
	topo, _ := scalesim.BuiltInTopology("Resnet50")
	layer, _ := topo.Layer("CB2a_2") // the 3x3 conv: real window reuse
	cfg := scalesim.NewConfig().WithArray(32, 32)

	// One pass, tapping the IFMAP read stream into the profiler.
	prof := tracetools.NewReuseProfiler()
	if _, err := systolic.Run(layer, cfg, systolic.Sinks{IfmapRead: prof}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d IFMAP reads, %d distinct words\n\n",
		layer.Name, prof.Total(), prof.Distinct())
	fmt.Printf("%-16s %12s %10s\n", "IFMAP SRAM", "DRAM reads", "miss rate")
	capacities := []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	curve := prof.MissRatioCurve(capacities)
	var pickKB int
	for _, p := range curve {
		fmt.Printf("%13d KiB %12d %9.2f%%\n",
			p.CapacityWords/1024, p.Misses, 100*p.Ratio)
		// Pick the smallest capacity within 1% of the cold-miss floor.
		if pickKB == 0 && p.Misses <= prof.Distinct()+prof.Distinct()/100 {
			pickKB = int(p.CapacityWords / 1024)
		}
	}
	if pickKB == 0 {
		pickKB = int(capacities[len(capacities)-1] / 1024)
	}

	// Verify the pick with a full simulation at that SRAM size. The
	// simulator's buffer is double-buffered FIFO rather than ideal LRU, so
	// we allow the conservative factor of two.
	verified, err := core.New(cfg.WithSRAM(2*pickKB, 512, 256), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lr, err := verified.SimulateLayer(layer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npicked %d KiB (x2 for double buffering): simulated DRAM ifmap reads %d vs %d distinct (overhead %.1f%%)\n",
		pickKB, lr.Memory.IfmapDRAMReads, layer.IfmapWords(),
		100*(float64(lr.Memory.IfmapDRAMReads)/float64(layer.IfmapWords())-1))

}
