// Inception cells: GoogLeNet's modules run four convolution branches that
// SCALE-Sim serializes (Sec. II-E of the paper). On a scale-out system the
// branches can instead run concurrently on partition groups. This example
// quantifies the cost of serialization across system scales.
package main

import (
	"fmt"
	"log"

	"scalesim"
	"scalesim/internal/pipeline"
)

func main() {
	topo, _ := scalesim.BuiltInTopology("GoogLeNet")
	net, err := pipeline.FromTopology(topo, scalesim.GoogLeNetCells())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GoogLeNet: %d stages (%d inception cells), %.2f GMACs\n\n",
		len(net.Stages), 9, float64(topo.TotalMACOps())/1e9)

	fmt.Printf("%12s %14s %16s %10s\n", "MACs", "serial cells", "parallel cells", "speedup")
	for _, macs := range []int64{1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		res, err := pipeline.Evaluate(net, macs, scalesim.OutputStationary, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d %14d %16d %9.2fx\n",
			macs, res.SerialCycles, res.ParallelCycles, res.Speedup())
	}

	// Where the wins come from: the biggest cells at the largest scale.
	res, _ := pipeline.Evaluate(net, 1<<18, scalesim.OutputStationary, 8)
	fmt.Printf("\nper-stage at 2^18 MACs (cells only):\n")
	for _, st := range res.PerStage {
		if st.Serial == st.Parallel {
			continue
		}
		fmt.Printf("  %-8s serial %8d -> parallel %8d (%.2fx)\n",
			st.Stage, st.Serial, st.Parallel, float64(st.Serial)/float64(st.Parallel))
	}
}
