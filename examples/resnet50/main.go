// ResNet50 on a TPU-like accelerator: runs the full 54-layer network
// cycle-accurately under all three dataflows and reports where the cycles,
// utilization and DRAM bandwidth go — the per-network view the paper's
// Sec. II tooling produces.
package main

import (
	"fmt"
	"log"

	"scalesim"
)

func main() {
	topo, _ := scalesim.BuiltInTopology("Resnet50")

	// A TPU-flavoured configuration: large square array, generous SRAM.
	base := scalesim.NewConfig().
		WithArray(128, 128).
		WithSRAM(1024, 1024, 512)

	fmt.Printf("ResNet50 (%d layers, %.2f GMACs) on a 128x128 array\n\n",
		len(topo.Layers), float64(topo.TotalMACOps())/1e9)

	// Compare the three dataflows end to end.
	fmt.Printf("%-18s %14s %8s %14s %12s\n",
		"dataflow", "total cycles", "util%", "dram words", "avg bw B/cyc")
	var best scalesim.RunResult
	for _, df := range []scalesim.Dataflow{
		scalesim.OutputStationary, scalesim.WeightStationary, scalesim.InputStationary,
	} {
		sim, err := scalesim.NewSimulator(base.WithDataflow(df), scalesim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		run, err := sim.Simulate(topo)
		if err != nil {
			log.Fatal(err)
		}
		util := float64(run.TotalMACs) / (float64(base.MACs()) * float64(run.TotalCycles))
		fmt.Printf("%-18s %14d %8.1f %14d %12.3f\n",
			df, run.TotalCycles, 100*util,
			run.DRAMReads()+run.DRAMWrites(), run.AvgBandwidth())
		if best.TotalCycles == 0 || run.TotalCycles < best.TotalCycles {
			best = run
		}
	}

	// The five most expensive layers under the best dataflow.
	fmt.Printf("\nmost expensive layers (%s dataflow):\n", best.Config.Dataflow)
	type cost struct {
		name   string
		cycles int64
		bw     float64
	}
	costs := make([]cost, 0, len(best.Layers))
	for _, lr := range best.Layers {
		costs = append(costs, cost{lr.Compute.Layer.Name, lr.Compute.Cycles, lr.Memory.AvgTotalBW()})
	}
	for i := 0; i < 5; i++ {
		max := i
		for j := i + 1; j < len(costs); j++ {
			if costs[j].cycles > costs[max].cycles {
				max = j
			}
		}
		costs[i], costs[max] = costs[max], costs[i]
		share := 100 * float64(costs[i].cycles) / float64(best.TotalCycles)
		fmt.Printf("  %-10s %10d cycles (%4.1f%% of network)  %7.3f B/cyc\n",
			costs[i].name, costs[i].cycles, share, costs[i].bw)
	}
}
