// Offload: the system-integration view of Fig. 1. A host CPU drives the
// accelerator over the system bus — task descriptor in memory-mapped
// registers, doorbell, interrupt on completion — and we account the full
// offload timeline for every AlexNet layer.
package main

import (
	"fmt"
	"log"

	"scalesim"
	"scalesim/internal/system"
)

func main() {
	topo, _ := scalesim.BuiltInTopology("AlexNet")
	cfg := scalesim.NewConfig().WithArray(32, 32).WithSRAM(128, 128, 64)

	sim, err := scalesim.NewSimulator(cfg, scalesim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	accel, err := system.NewAccelerator(sim, topo)
	if err != nil {
		log.Fatal(err)
	}
	// Each register transaction costs 10 accelerator cycles on the bus.
	host, err := system.NewHost(accel, 10)
	if err != nil {
		log.Fatal(err)
	}

	records, err := host.OffloadAll()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("AlexNet offloaded to a %dx%d accelerator (bus cost 10 cycles/transaction)\n\n",
		cfg.ArrayHeight, cfg.ArrayWidth)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "task", "submit", "complete", "accel-cyc", "dram-words")
	var accelTotal int64
	for _, r := range records {
		fmt.Printf("%-8s %12d %12d %12d %12d\n",
			r.Layer, r.SubmitCycle, r.CompleteCycle, r.AccelCycles, r.DRAMWords)
		accelTotal += r.AccelCycles
	}
	wall := records[len(records)-1].CompleteCycle
	fmt.Printf("\nwall time %d cycles; accelerator busy %d (%.2f%%); %d bus transactions\n",
		wall, accelTotal, 100*float64(accelTotal)/float64(wall), host.Bus().Transactions())
}
