// Scaling study: the paper's central question — scale UP (one big array)
// or scale OUT (many small arrays)? — answered for the Transformer layer
// TF0 at a fixed MAC budget, first with the analytical model (Eqs. 4-6),
// then cycle-accurately with DRAM bandwidth and energy (Figs. 10-12).
package main

import (
	"fmt"
	"log"

	"scalesim"
)

func main() {
	topo, _ := scalesim.BuiltInTopology("LanguageModels")
	tf0, _ := topo.Layer("TF0")
	m := scalesim.Map(tf0, scalesim.OutputStationary)

	const macs = 1 << 14 // 16384 MACs to spend
	fmt.Printf("TF0 (%dx%dx%d GEMM), budget %d MACs\n\n", m.Sr, m.T, m.Sc, macs)

	// 1. Analytical comparison (stall-free, Eq. 4 vs Eq. 6).
	up, _ := scalesim.BestScaleUp(m, macs, 8)
	out, _ := scalesim.BestScaleOut(m, macs, 8, 0)
	fmt.Printf("best scale-up:  one %s array            -> %9d cycles (util %4.1f%%)\n",
		up.Config.Shape, up.Cycles, 100*up.MappingUtilization)
	fmt.Printf("best scale-out: %s grid of %s arrays -> %9d cycles (util %4.1f%%)\n",
		out.Config.Parts, out.Config.Shape, out.Cycles, 100*out.MappingUtilization)
	fmt.Printf("scale-out speedup: %.2fx (stall-free)\n\n", float64(up.Cycles)/float64(out.Cycles))

	// 2. Cycle-accurate sweep over partition counts with the paper's
	// Fig. 11 memory budget: runtime falls, bandwidth demand rises, and
	// energy has a sweet spot in between.
	base := scalesim.NewConfig().
		WithSRAM(512, 512, 256).
		WithDataflow(scalesim.OutputStationary)
	results, err := scalesim.ScaleOutSweep(tf0, base, macs, []int64{1, 4, 16, 64}, 8,
		scalesim.ScaleOutOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-14s %10s %12s %12s %14s\n",
		"partitions", "array", "cycles", "avg BW", "peak BW", "energy")
	for _, r := range results {
		fmt.Printf("%-10d %-14s %10d %9.2f B/c %9.2f B/c %14.3e\n",
			r.Spec.Parts.Count(), r.Spec.Shape.String(), r.Cycles,
			r.AvgDRAMBW(), r.PeakDRAMBW, r.Energy.Total())
	}

	// 3. The sweet spot: fastest configuration whose average bandwidth
	// demand stays under the platform budget. TF0's huge output matrix
	// makes its floor high, so we allow an HBM-ish 64 bytes/cycle.
	const bwBudget = 64.0
	pick, _, err := scalesim.SweetSpot(tf0, base, macs, []int64{1, 4, 16, 64}, 8,
		bwBudget, scalesim.ScaleOutOptions{})
	if err != nil {
		fmt.Printf("\n%v\n", err)
		return
	}
	fmt.Printf("\nsweet spot under %.0f B/cycle DRAM budget: %s -> %d cycles\n",
		bwBudget, pick.Spec, pick.Cycles)
}
