package scalesim_test

import (
	"testing"

	"scalesim"
)

// TestFacadeQuickstart exercises the package-level example from the doc
// comment end to end.
func TestFacadeQuickstart(t *testing.T) {
	cfg := scalesim.NewConfig().WithArray(8, 8).WithSRAM(2, 2, 1)
	topo, ok := scalesim.BuiltInTopology("TinyNet")
	if !ok {
		t.Fatal("TinyNet missing")
	}
	sim, err := scalesim.NewSimulator(cfg, scalesim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Simulate(topo)
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalCycles <= 0 || run.AvgBandwidth() <= 0 {
		t.Errorf("empty run result: %d cycles, %v bytes/cycle", run.TotalCycles, run.AvgBandwidth())
	}
}

func TestFacadeAnalytical(t *testing.T) {
	l := scalesim.GEMMLayer("g", 1024, 128, 512)
	m := scalesim.Map(l, scalesim.OutputStationary)
	if m.Sr != 1024 || m.T != 128 || m.Sc != 512 {
		t.Fatalf("Map = %+v", m)
	}
	if got := scalesim.Runtime(m, 32, 32); got <= 0 {
		t.Error("Runtime <= 0")
	}
	up, ok := scalesim.BestScaleUp(m, 1<<12, 8)
	if !ok {
		t.Fatal("no scale-up config")
	}
	out, ok := scalesim.BestScaleOut(m, 1<<12, 8, 0)
	if !ok {
		t.Fatal("no scale-out config")
	}
	if out.Cycles > up.Cycles {
		t.Error("scale-out slower than scale-up")
	}
	if scalesim.ScaleOutRuntime(m, 2, 2, 8, 8) <= 0 {
		t.Error("ScaleOutRuntime <= 0")
	}
	res, err := scalesim.ParetoSearch([]scalesim.Workload{{Name: "g", M: m}}, 1<<10, 8, 0, false)
	if err != nil || res.Best.TotalCycles <= 0 {
		t.Errorf("ParetoSearch: %v %+v", err, res.Best)
	}
}

func TestFacadeScaleOut(t *testing.T) {
	l := scalesim.GEMMLayer("g", 256, 64, 128)
	base := scalesim.NewConfig().WithSRAM(8, 8, 4)
	res, err := scalesim.RunScaleOut(l, base, scalesim.ScaleOutSpec{
		Parts: scalesim.Partitioning{Pr: 2, Pc: 2},
		Shape: scalesim.Shape{R: 8, C: 8},
	}, scalesim.ScaleOutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Energy.Total() <= 0 {
		t.Errorf("empty scale-out result: %+v", res)
	}
	sweep, err := scalesim.ScaleOutSweep(l, base, 1<<10, []int64{1, 4}, 8, scalesim.ScaleOutOptions{})
	if err != nil || len(sweep) != 2 {
		t.Fatalf("sweep: %v, %d results", err, len(sweep))
	}
}

func TestFacadeHelpers(t *testing.T) {
	if _, err := scalesim.ParseDataflow("ws"); err != nil {
		t.Error(err)
	}
	if len(scalesim.BuiltInTopologyNames()) < 4 {
		t.Error("missing built-ins")
	}
	if scalesim.DDR3().Banks < 1 {
		t.Error("DDR3 defaults broken")
	}
	if scalesim.EyerissEnergy().DRAMAccess != 200 {
		t.Error("Eyeriss defaults broken")
	}
}

func TestFacadeSweetSpotAndCells(t *testing.T) {
	l := scalesim.GEMMLayer("g", 512, 64, 256)
	base := scalesim.NewConfig().WithSRAM(16, 16, 8)
	pick, sweep, err := scalesim.SweetSpot(l, base, 1<<10, []int64{1, 4}, 8, 1e9, scalesim.ScaleOutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pick.Cycles <= 0 || len(sweep) != 2 {
		t.Errorf("pick %+v, sweep %d", pick, len(sweep))
	}
	cells := scalesim.GoogLeNetCells()
	if len(cells) != 9 {
		t.Errorf("GoogLeNetCells = %d", len(cells))
	}
	if scalesim.DefaultNoC().LinkWordsPerCycle <= 0 {
		t.Error("DefaultNoC broken")
	}
}
