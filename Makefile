GO ?= go

.PHONY: all build vet test race bench smoke benchdiff profile prof-cycles fuzz figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || (gofmt -l . && exit 1)

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

smoke:
	$(GO) test -run XXX -benchmem -benchtime=1x \
		-bench='BenchmarkTableIV$$|BenchmarkFoldTrace|BenchmarkMemorySystemRuns|BenchmarkSweepCached|BenchmarkDSETier1$$' .

# Compare a quick benchmark run against the newest results/BENCH_*.json;
# fails on >25% ns/op regressions. Single-iteration numbers are noisy, so
# treat a failure as a prompt to rerun with -benchtime=3x, not a verdict.
benchdiff:
	$(GO) test -run XXX -benchmem -benchtime=1x \
		-bench='BenchmarkTableIV$$|BenchmarkFoldTrace|BenchmarkMemorySystemRuns|BenchmarkTimelineOverhead|BenchmarkCSVTraceWrite|BenchmarkSimulateTinyNet|BenchmarkSweepCached|BenchmarkDSETier1$$|BenchmarkDSESweep' . \
		| $(GO) run ./results/benchdiff.go

# CPU-profile the Table IV benchmark; inspect with
# `go tool pprof results/profile.pb.gz`.
profile:
	mkdir -p results
	$(GO) test -run XXX -bench=BenchmarkTableIV -benchtime=3x \
		-cpuprofile results/profile.pb.gz .

# Simulated-cycle attribution of BERTTiny under a bounded DRAM link;
# inspect with `go tool pprof -http=: results/cycles.pb.gz`.
prof-cycles:
	mkdir -p results
	$(GO) run ./cmd/scaleprof run -net BERTTiny -dram-bw 4 \
		-o results/cycles.pb.gz -roofline results/roofline.csv
	$(GO) tool pprof -top results/cycles.pb.gz

fuzz:
	$(GO) test ./internal/config/ -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/topology/ -fuzz FuzzParseCSV -fuzztime 30s

# Regenerate every figure's data into results/.
figures:
	$(GO) run ./cmd/scalestudy fig4 -sizes 4,8,16,32,64,128 -o results/fig4.csv
	$(GO) run ./cmd/scalestudy fig9a -o results/fig9a.csv
	$(GO) run ./cmd/scalestudy fig9bc -o results/fig9bc.csv
	$(GO) run ./cmd/scalestudy fig10a -o results/fig10a.csv
	$(GO) run ./cmd/scalestudy fig10b -o results/fig10b.csv
	$(GO) run ./cmd/scalestudy fig11 -macs 16384 -parts 1,4,16,64 -o results/fig11_2e14.csv
	$(GO) run ./cmd/scalestudy fig12 -layer CB2a_3 -macs 1024,4096,16384,65536 -parts 1,4,16,64 -o results/fig12_cb2a3.csv
	$(GO) run ./cmd/scalestudy fig13 -o results/fig13.csv
	$(GO) run ./cmd/scalestudy fig14 -o results/fig14.csv

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/offload
	$(GO) run ./examples/provisioning
	$(GO) run ./examples/inception

clean:
	rm -f test_output.txt bench_output.txt
