// Command benchdiff compares a fresh `go test -bench` run against a
// recorded baseline and fails on wall-clock regressions. Pipe benchmark
// output into it:
//
//	go test -run XXX -bench . -benchmem -benchtime=1x . | go run ./results/benchdiff.go
//	go run ./results/benchdiff.go -baseline results/BENCH_PR3.json < bench.txt
//
// Without -baseline it picks the lexically newest results/BENCH_*.json.
// Baseline entries may be flat measurements ({"ns_per_op": ...}) or the
// before/after pairs of a PR record; the "after" side is the baseline
// then. Benchmarks present on only one side are reported and skipped. A
// measured ns/op OR allocs/op more than -threshold (default 25%) above
// the baseline exits non-zero — allocation counts are deterministic, so
// the allocs gate catches per-op allocation growth that the noisy wall
// clock hides; single-iteration smoke runs are noisy on the ns/op side,
// so the driver (make benchdiff, the CI step) treats the verdict as
// advisory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// measurement is one benchmark's recorded cost.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baselineEntry accepts both recorded shapes: a flat measurement, or a
// before/after pair whose "after" side is this tree's recorded cost.
type baselineEntry struct {
	measurement
	After *measurement `json:"after"`
}

// resolved returns the entry's effective baseline measurement.
func (e baselineEntry) resolved() measurement {
	if e.After != nil {
		return *e.After
	}
	return e.measurement
}

type baselineFile struct {
	Description string                   `json:"description"`
	Benchmarks  map[string]baselineEntry `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "baseline JSON (default: newest results/BENCH_*.json)")
		threshold    = fs.Float64("threshold", 0.25, "allowed fractional ns/op regression")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	path := *baselinePath
	if path == "" {
		var err error
		if path, err = newestBaseline(); err != nil {
			return err
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}

	current, err := parseBenchOutput(stdin)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines on stdin; pipe `go test -bench` output in")
	}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(stdout, "baseline: %s\n", path)
	fmt.Fprintf(stdout, "%-40s %15s %15s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "now ns/op", "delta", "base allocs", "now allocs", "delta")
	var regressions []string
	for _, name := range names {
		entry, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(stdout, "%-40s %15s %15.0f %8s\n", name, "-", current[name].NsPerOp, "new")
			continue
		}
		b := entry.resolved()
		if b.NsPerOp <= 0 {
			continue
		}
		delta := current[name].NsPerOp/b.NsPerOp - 1
		mark := ""
		if delta > *threshold {
			mark = " REGRESSION(ns/op)"
			regressions = append(regressions, name)
		}
		// Allocation counts gate under the same threshold. A baseline
		// without -benchmem data (allocs 0) can't be compared; it never
		// fails the gate.
		allocDelta := 0.0
		allocBase, allocNow := b.AllocsPerOp, current[name].AllocsPerOp
		if allocBase > 0 {
			allocDelta = allocNow/allocBase - 1
			if allocDelta > *threshold {
				if mark == "" {
					regressions = append(regressions, name)
				}
				mark += " REGRESSION(allocs/op)"
			}
		}
		fmt.Fprintf(stdout, "%-40s %15.0f %15.0f %+7.1f%% %12.0f %12.0f %+7.1f%%%s\n",
			name, b.NsPerOp, current[name].NsPerOp, 100*delta,
			allocBase, allocNow, 100*allocDelta, mark)
	}
	for name := range base.Benchmarks {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(stdout, "%-40s (in baseline, not measured)\n", name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed >%.0f%%: %s",
			len(regressions), 100**threshold, strings.Join(regressions, ", "))
	}
	fmt.Fprintln(stdout, "ok: no regressions above threshold")
	return nil
}

// newestBaseline picks the lexically last results/BENCH_*.json, checking
// both the repo root and the results directory as working directory.
func newestBaseline() (string, error) {
	for _, pattern := range []string{"results/BENCH_*.json", "BENCH_*.json"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			return "", err
		}
		if len(matches) > 0 {
			sort.Strings(matches)
			return matches[len(matches)-1], nil
		}
	}
	return "", fmt.Errorf("no results/BENCH_*.json baseline found; pass -baseline")
}

// parseBenchOutput extracts per-benchmark measurements from `go test
// -bench` stdout. Lines look like
//
//	BenchmarkTableIV-4   3   69700569 ns/op   42064912 B/op   4299 allocs/op
//
// the trailing -N on the name being GOMAXPROCS, which is stripped so
// names match recorded baselines across machines. Sub-benchmark names
// (BenchmarkFoldTrace/os-4) keep their slash path. Custom metrics are
// ignored.
func parseBenchOutput(r io.Reader) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if m.NsPerOp > 0 {
			out[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
