// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating its data via internal/experiments and reporting
// headline numbers as benchmark metrics), plus micro-benchmarks of the
// simulator's building blocks. Run with:
//
//	go test -bench=. -benchmem
package scalesim_test

import (
	"io"
	"runtime"
	"testing"

	"scalesim"
	"scalesim/internal/analytical"
	"scalesim/internal/batch"
	"scalesim/internal/config"
	"scalesim/internal/dataflow"
	"scalesim/internal/dram"
	"scalesim/internal/experiments"
	"scalesim/internal/memory"
	"scalesim/internal/obsv/timeline"
	"scalesim/internal/rtlref"
	"scalesim/internal/simcache"
	"scalesim/internal/systolic"
	"scalesim/internal/topology"
	"scalesim/internal/trace"
)

// --- Tables ---------------------------------------------------------------

// BenchmarkTableIII exercises the spatio-temporal mapping of Table III:
// every built-in layer under every dataflow.
func BenchmarkTableIII(b *testing.B) {
	layers := topology.ResNet50().Layers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		for _, l := range layers {
			for _, df := range config.Dataflows {
				m := dataflow.Map(l, df)
				total += m.MACs()
			}
		}
		if total <= 0 {
			b.Fatal("empty mapping")
		}
	}
}

// tableIVBenchLayers returns the Table IV language-model workloads with each
// GEMM dimension clamped to 256 so the trace volume stays benchmark-sized
// while the address patterns remain the real ones.
func tableIVBenchLayers(b *testing.B) []topology.Layer {
	const cap = 256
	clamp := func(v int) int {
		if v > cap {
			return cap
		}
		return v
	}
	full := topology.LanguageModels()
	if len(full.Layers) != 10 {
		b.Fatal("Table IV layer count")
	}
	for _, l := range full.Layers {
		if m := dataflow.Map(l, config.OutputStationary); m.MACs() != l.MACOps() {
			b.Fatal("mapping mismatch")
		}
	}
	layers := make([]topology.Layer, 0, len(full.Layers))
	for _, l := range full.Layers {
		layers = append(layers, topology.FromGEMM(l.Name,
			clamp(l.IfmapH), clamp(l.Channels), clamp(l.NumFilters)))
	}
	return layers
}

// BenchmarkTableIV runs the (clamped) Table IV workloads through the full
// systolic→trace→memory hot path — SRAM model plus a CSV trace sink — the
// loop the strided-run representation is built to accelerate. Before/after
// numbers for this benchmark live in results/BENCH_PR3.json.
func BenchmarkTableIV(b *testing.B) {
	b.ReportAllocs()
	layers := tableIVBenchLayers(b)
	cfg := config.New().WithArray(32, 32).WithSRAM(64, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range layers {
			sys, err := memory.NewSystem(cfg, memory.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sys.SetRegions(cfg.IfmapOffset, l.IfmapWords(),
				cfg.FilterOffset, l.FilterWords(), cfg.OfmapOffset, l.OfmapWords())
			csv := trace.NewCSVWriter(io.Discard)
			res, err := systolic.Run(l, cfg, systolic.Sinks{
				IfmapRead:  trace.Tee(sys.Ifmap, csv),
				FilterRead: sys.Filter,
				OfmapWrite: sys.Ofmap,
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.Ofmap.Flush(res.Cycles)
			if err := csv.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figures ----------------------------------------------------------------

// BenchmarkFig4 regenerates the validation figure: RTL reference vs
// trace-based simulator over array sizes 4..64.
func BenchmarkFig4(b *testing.B) {
	sizes := []int{4, 8, 16, 32, 64}
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig4(sizes)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.RTLCycles != r.SimCycles {
				b.Fatalf("size %d: RTL %d != sim %d", r.ArraySize, r.RTLCycles, r.SimCycles)
			}
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].SimCycles), "cycles@64x64")
}

// BenchmarkFig9a regenerates the scale-up/scale-out search space for TF0
// over the paper's five MAC budgets.
func BenchmarkFig9a(b *testing.B) {
	budgets := []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	var points []experiments.Fig9aPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig9a(budgets, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(points)), "configs")
}

// BenchmarkFig9bc regenerates the aspect-ratio sweeps at 2^14 and 2^16 MACs
// and reports the runtime spread.
func BenchmarkFig9bc(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		for _, macs := range []int64{1 << 14, 1 << 16} {
			rows, err := experiments.Fig9bc(macs)
			if err != nil {
				b.Fatal(err)
			}
			lo, hi := rows[0].Cycles, rows[0].Cycles
			for _, r := range rows {
				if r.Cycles < lo {
					lo = r.Cycles
				}
				if r.Cycles > hi {
					hi = r.Cycles
				}
			}
			spread = float64(hi) / float64(lo)
		}
	}
	b.ReportMetric(spread, "spread@2^16")
}

// BenchmarkFig10a regenerates the ResNet50 scale-up vs scale-out ratios.
func BenchmarkFig10a(b *testing.B) {
	budgets := []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(experiments.Fig10aLayers(), budgets, 8)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Ratio > worst {
				worst = r.Ratio
			}
		}
	}
	b.ReportMetric(worst, "max-slowdown")
}

// BenchmarkFig10b regenerates the language-model ratios; the paper reports
// up to ~50x at 65536 MACs.
func BenchmarkFig10b(b *testing.B) {
	budgets := []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(experiments.Fig10bLayers(), budgets, 8)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Ratio > worst {
				worst = r.Ratio
			}
		}
	}
	b.ReportMetric(worst, "max-slowdown")
}

// BenchmarkFig11 regenerates the cycle-accurate runtime/bandwidth sweep for
// CB2a_3 and TF0 at 2^14 MACs (the figure's middle budget).
func BenchmarkFig11(b *testing.B) {
	var bwRise float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig11(1<<14, []int64{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		tf0 := series["TF0"]
		bwRise = tf0[len(tf0)-1].AvgBW / tf0[0].AvgBW
	}
	b.ReportMetric(bwRise, "tf0-bw-rise")
}

// BenchmarkFig12 regenerates the energy-vs-partitions curves for CB2a_3
// across three MAC budgets.
func BenchmarkFig12(b *testing.B) {
	var minEnergyParts float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig12(experiments.CB2a3(),
			[]int64{1 << 10, 1 << 14, 1 << 16}, []int64{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		rows := series[1<<16]
		best := rows[0]
		for _, r := range rows[1:] {
			if r.Energy.Total() < best.Energy.Total() {
				best = r
			}
		}
		minEnergyParts = float64(best.Partitions)
	}
	b.ReportMetric(minEnergyParts, "minE-parts@2^16")
}

// BenchmarkFig13 regenerates the scale-up pareto study across MAC budgets.
func BenchmarkFig13(b *testing.B) {
	budgets := []int64{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
	var worstLoss float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(budgets)
		if err != nil {
			b.Fatal(err)
		}
		worstLoss = 0
		for _, r := range rows {
			if l := r.Loss[len(r.Loss)-1]; l > worstLoss {
				worstLoss = l
			}
		}
	}
	b.ReportMetric(worstLoss, "worst-loss")
}

// BenchmarkFig14 regenerates the scale-out pareto study.
func BenchmarkFig14(b *testing.B) {
	budgets := []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	var worstLoss float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(budgets)
		if err != nil {
			b.Fatal(err)
		}
		worstLoss = 0
		for _, r := range rows {
			if l := r.Loss[len(r.Loss)-1]; l > worstLoss {
				worstLoss = l
			}
		}
	}
	b.ReportMetric(worstLoss, "worst-loss")
}

// --- Micro-benchmarks -------------------------------------------------------

func benchLayer() topology.Layer {
	return topology.Layer{Name: "bench", IfmapH: 28, IfmapW: 28, FilterH: 3,
		FilterW: 3, Channels: 64, NumFilters: 128, Stride: 1}
}

// BenchmarkSystolicTrace measures raw trace generation throughput per
// dataflow (no memory system attached).
func BenchmarkSystolicTrace(b *testing.B) {
	for _, df := range config.Dataflows {
		b.Run(df.String(), func(b *testing.B) {
			cfg := config.New().WithArray(32, 32).WithDataflow(df)
			var accesses int64
			for i := 0; i < b.N; i++ {
				res, err := systolic.Run(benchLayer(), cfg, systolic.Sinks{})
				if err != nil {
					b.Fatal(err)
				}
				accesses = res.IfmapReads + res.FilterReads + res.OfmapWrites
			}
			b.ReportMetric(float64(accesses), "accesses/op")
		})
	}
}

// BenchmarkFoldTrace measures pure fold-loop trace generation per dataflow
// into run-native statistics sinks: the O(segments) generation path with no
// memory model attached.
func BenchmarkFoldTrace(b *testing.B) {
	for _, df := range config.Dataflows {
		b.Run(df.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfg := config.New().WithArray(32, 32).WithDataflow(df)
			l := benchLayer()
			st := trace.NewStats()
			for i := 0; i < b.N; i++ {
				if _, err := systolic.Run(l, cfg, systolic.Sinks{
					IfmapRead: st, FilterRead: st, OfmapWrite: st,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimelineOverhead pins the cost of timeline instrumentation on
// the fold-trace hot path. The disabled variant is the plain run-native
// path — nil fold observer, no samplers — and its alloc count is the
// BenchmarkFoldTrace baseline; attaching a timeline writer must not move
// it. The enabled variant pays the full price: a LayerRecorder with
// samplers teed onto every stream, the fold observer, and the layer
// emitted into a writer over io.Discard.
func BenchmarkTimelineOverhead(b *testing.B) {
	cfg := config.New().WithArray(32, 32)
	l := benchLayer()
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		st := trace.NewStats()
		for i := 0; i < b.N; i++ {
			if _, err := systolic.Run(l, cfg, systolic.Sinks{
				IfmapRead: st, FilterRead: st, OfmapWrite: st,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		st := trace.NewStats()
		w := timeline.New(io.Discard, timeline.Options{})
		pid := w.Process("bench")
		for i := 0; i < b.N; i++ {
			rec := timeline.NewLayerRecorder(l.Name, 0, w.Window())
			res, err := systolic.Run(l, cfg, systolic.Sinks{
				IfmapRead:  trace.Tee(st, rec.Sampler(timeline.TrackSRAMIfmapRead)),
				FilterRead: trace.Tee(st, rec.Sampler(timeline.TrackSRAMFilterRead)),
				OfmapWrite: trace.Tee(st, rec.Sampler(timeline.TrackSRAMOfmapWrite)),
				Folds: systolic.FoldObserverFunc(func(f systolic.FoldInfo) {
					rec.AddFold(f.FR, f.FC, f.Rows, f.Cols, f.Start, f.Cycles)
				}),
			})
			if err != nil {
				b.Fatal(err)
			}
			rec.Finish(res.Cycles, 0)
			rec.Emit(w, pid, timeline.DefaultPlacement(0))
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkAnalyticalEstimate measures the closed-form fast path.
func BenchmarkAnalyticalEstimate(b *testing.B) {
	cfg := config.New().WithArray(32, 32)
	l := benchLayer()
	for i := 0; i < b.N; i++ {
		if _, err := systolic.Estimate(l, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemorySystem streams a full layer through the SRAM/DRAM model.
func BenchmarkMemorySystem(b *testing.B) {
	cfg := config.New().WithArray(32, 32).WithSRAM(64, 64, 32)
	l := benchLayer()
	for i := 0; i < b.N; i++ {
		sys, err := memory.NewSystem(cfg, memory.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sys.SetRegions(cfg.IfmapOffset, l.IfmapWords(),
			cfg.FilterOffset, l.FilterWords(), cfg.OfmapOffset, l.OfmapWords())
		res, err := systolic.Run(l, cfg, systolic.Sinks{
			IfmapRead: sys.Ifmap, FilterRead: sys.Filter, OfmapWrite: sys.Ofmap,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Ofmap.Flush(res.Cycles)
	}
}

// BenchmarkMemorySystemRuns isolates the memory model's run consumption:
// synthetic strided run batches stream straight into the SRAM buffers —
// a sliding read window with a 75% hit mix plus a write-back stream — with
// no systolic front end.
func BenchmarkMemorySystemRuns(b *testing.B) {
	b.ReportAllocs()
	cfg := config.New().WithArray(32, 32).WithSRAM(64, 64, 32)
	const region = 1 << 20
	const cycles = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := memory.NewSystem(cfg, memory.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sys.SetRegions(0, region, region, region, 2*region, region)
		runs := make([]trace.Run, 1)
		for c := int64(0); c < cycles; c++ {
			runs[0] = trace.Run{Base: (c * 16) % (region - 64), Stride: 1, Count: 64}
			sys.Ifmap.ConsumeRuns(c, runs)
			runs[0] = trace.Run{Base: region + (c*4)%(region-16), Stride: 1, Count: 16}
			sys.Filter.ConsumeRuns(c, runs)
			runs[0] = trace.Run{Base: 2*region + (c*8)%(region-8), Stride: 1, Count: 8}
			sys.Ofmap.ConsumeRuns(c, runs)
		}
		sys.Ofmap.Flush(cycles)
	}
}

// BenchmarkDRAMModel replays a sequential read stream through the timing
// substrate.
func BenchmarkDRAMModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := dram.New(dram.DDR3())
		if err != nil {
			b.Fatal(err)
		}
		for a := int64(0); a < 100_000; a++ {
			m.Request(a, a)
		}
		if m.Stats().RowHitRate() < 0.99 {
			b.Fatal("unexpected hit rate")
		}
	}
}

// BenchmarkRTLReference measures the PE-level golden model at 32x32.
func BenchmarkRTLReference(b *testing.B) {
	a := make([][]float64, 32)
	c := make([][]float64, 32)
	for i := range a {
		a[i] = make([]float64, 32)
		c[i] = make([]float64, 32)
		for j := range a[i] {
			a[i][j] = float64(i + j)
			c[i][j] = float64(i - j)
		}
	}
	for i := 0; i < b.N; i++ {
		if _, err := rtlref.RunOS(a, c, 32, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestScaleOut measures one full design-space search.
func BenchmarkBestScaleOut(b *testing.B) {
	m := dataflow.Map(experiments.TF0(), config.OutputStationary)
	for i := 0; i < b.N; i++ {
		if _, ok := analytical.BestScaleOut(m, 1<<16, 8, 0); !ok {
			b.Fatal("no config")
		}
	}
}

// BenchmarkSimulateTinyNet measures the full stack end to end via the
// public API.
func BenchmarkSimulateTinyNet(b *testing.B) {
	cfg := scalesim.NewConfig().WithArray(16, 16).WithSRAM(8, 8, 4)
	topo, _ := scalesim.BuiltInTopology("TinyNet")
	sim, err := scalesim.NewSimulator(cfg, scalesim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(topo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCached measures the per-layer result cache on a repeated
// design-space sweep. The "off" sub-benchmark is the PR4 baseline: every
// grid point simulates live. The "on" sub-benchmark warms a shared cache
// once outside the timed region, then each iteration replays the whole grid
// from memoized results — the speedup is the cache's value on re-runs of
// the same grid (a re-measured sweep, a CI re-run, a figure regeneration).
// Rows are byte-identical either way (TestGridCacheEquivalence pins that).
func BenchmarkSweepCached(b *testing.B) {
	spec := batch.Spec{
		Base:       config.New(),
		Arrays:     [][2]int{{8, 8}, {16, 16}},
		Dataflows:  []config.Dataflow{config.OutputStationary, config.WeightStationary},
		SRAMs:      [][3]int{{2, 2, 1}},
		Topologies: []topology.Topology{topology.TinyNet()},
		Parallel:   1,
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := batch.Run(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		cached := spec
		cached.Cache = simcache.New()
		if _, err := batch.Run(cached); err != nil { // warm outside the timer
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := batch.Run(cached); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cached.Cache.Len()), "entries")
	})
}

// BenchmarkEngineParallel measures the layer-execution engine's scaling:
// the same ResNet50 simulation at one worker and at GOMAXPROCS workers.
// Layers are independent, so on a machine with 4+ cores the parallel
// sub-benchmark should run at least 2x faster than workers=1.
func BenchmarkEngineParallel(b *testing.B) {
	cfg := scalesim.NewConfig()
	topo, _ := scalesim.BuiltInTopology("Resnet50")
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=max", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			sim, err := scalesim.NewSimulator(cfg, scalesim.Options{Workers: bench.workers})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := sim.Simulate(topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSVTraceWrite measures trace serialization throughput.
func BenchmarkCSVTraceWrite(b *testing.B) {
	addrs := make([]int64, 32)
	for i := range addrs {
		addrs[i] = int64(i * 7)
	}
	for i := 0; i < b.N; i++ {
		w := trace.NewCSVWriter(discard{})
		for c := int64(0); c < 1000; c++ {
			w.Consume(c, addrs)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
