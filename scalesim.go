// Package scalesim is a Go implementation of SCALE-Sim — the SystoliC
// AcceLErator SIMulator of Samajdar et al. (ISPASS 2020) — together with
// the paper's analytical runtime model and its scale-up versus scale-out
// methodology.
//
// The package is a façade over the internal implementation:
//
//   - Config / Topology describe the hardware (Table I) and the workload
//     (Table II); both parse the original tool's file formats and both can
//     be built programmatically. Built-in workloads include ResNet50 and
//     the paper's Table IV language-model GEMMs.
//   - Simulator runs layers cycle-accurately: a stall-free systolic array
//     (OS, WS or IS dataflow) in front of three double-buffered SRAMs,
//     producing SRAM/DRAM traces, bandwidth profiles and energy estimates.
//     Layers execute concurrently on a bounded worker pool
//     (Options.Workers) with results joined in layer order, so output is
//     identical to a sequential run; custom per-layer trace sinks attach
//     through Options.Sinks factories.
//   - The analytical entry points (Runtime, BestScaleUp, BestScaleOut,
//     ParetoSearch) implement Eqs. 1-6 for fast design-space exploration.
//   - RunScaleOut executes a partitioned (multi-array) system
//     cycle-accurately, reproducing the paper's runtime/bandwidth/energy
//     trade-off study.
//
// A minimal session:
//
//	cfg := scalesim.NewConfig()                  // 32x32, OS, 512/512/256 KiB
//	topo, _ := scalesim.BuiltInTopology("TinyNet")
//	sim, _ := scalesim.NewSimulator(cfg, scalesim.Options{})
//	run, _ := sim.Simulate(topo)
//	fmt.Println(run.TotalCycles, run.AvgBandwidth())
package scalesim

import (
	"io"

	"scalesim/internal/analytical"
	"scalesim/internal/config"
	"scalesim/internal/core"
	"scalesim/internal/dataflow"
	"scalesim/internal/dram"
	"scalesim/internal/energy"
	"scalesim/internal/engine"
	"scalesim/internal/job"
	"scalesim/internal/memory"
	"scalesim/internal/noc"
	"scalesim/internal/obsv"
	"scalesim/internal/obsv/cycleacct"
	"scalesim/internal/obsv/timeline"
	"scalesim/internal/partition"
	"scalesim/internal/simcache"
	"scalesim/internal/topology"
	"scalesim/internal/trace"
	"scalesim/internal/vector"
)

// Core configuration and workload types.
type (
	// Config is the hardware description (Table I).
	Config = config.Config
	// Dataflow selects OS, WS or IS mapping.
	Dataflow = config.Dataflow
	// Layer is one network layer (one topology CSV row, Table II).
	Layer = topology.Layer
	// Topology is an ordered list of layers.
	Topology = topology.Topology
	// OpKind names an operator kind (conv/GEMM, attention score,
	// attention value, softmax, layernorm, element-wise).
	OpKind = topology.OpKind
	// GraphNode is one operator-graph node: a kind, a layer shape and
	// named input edges.
	GraphNode = topology.Node
	// Graph is an operator dependency DAG.
	Graph = topology.Graph
	// BERTConfig parameterizes a built-in BERT encoder block graph.
	BERTConfig = topology.BERTConfig
)

// Operator kinds.
const (
	OpConv           = topology.OpConv
	OpAttentionScore = topology.OpAttentionScore
	OpAttentionValue = topology.OpAttentionValue
	OpSoftmax        = topology.OpSoftmax
	OpLayerNorm      = topology.OpLayerNorm
	OpElementwise    = topology.OpElementwise
)

// Dataflow values.
const (
	OutputStationary = config.OutputStationary
	WeightStationary = config.WeightStationary
	InputStationary  = config.InputStationary
)

// Simulation types.
type (
	// Simulator executes topologies cycle-accurately.
	Simulator = core.Simulator
	// Options tunes tracing, memory, DRAM-timing and energy modeling.
	Options = core.Options
	// LayerResult is one layer's simulation outcome.
	LayerResult = core.LayerResult
	// VectorResult is a vector-unit node's simulation outcome
	// (LayerResult.Vector for softmax/layernorm/element-wise nodes).
	VectorResult = vector.Result
	// RunResult aggregates a topology run.
	RunResult = core.RunResult
	// MemoryOptions tunes the SRAM/DRAM memory system.
	MemoryOptions = memory.Options
	// DRAMConfig parameterizes the DRAM timing substrate.
	DRAMConfig = dram.Config
	// EnergyModel holds per-event energy costs.
	EnergyModel = energy.Model
	// EnergyBreakdown is an energy result split by component.
	EnergyBreakdown = energy.Breakdown
)

// Execution-engine types: per-layer trace sinks plug into the simulator
// through factories, so each concurrent layer gets its own consumers.
type (
	// TraceStream names one of the five per-layer trace streams.
	TraceStream = engine.Stream
	// TraceConsumer receives (cycle, addresses) trace events.
	TraceConsumer = trace.Consumer
	// TraceConsumerFunc adapts a function to a TraceConsumer.
	TraceConsumerFunc = trace.ConsumerFunc
	// TraceRun is a strided address segment: Count addresses starting at
	// Base with constant Stride. The simulator generates and consumes
	// per-cycle batches in this compressed form.
	TraceRun = trace.Run
	// TraceRunConsumer receives trace events in run form; consumers that
	// implement it alongside TraceConsumer are fed runs directly, without
	// batch materialization.
	TraceRunConsumer = trace.RunConsumer
	// SinkJob identifies the run and layer a sink factory is building for.
	SinkJob = engine.Job
	// SinkSet collects one layer's trace consumers and finish/close hooks.
	SinkSet = engine.SinkSet
	// SinkFactory builds one layer's sinks; supply via Options.Sinks.
	SinkFactory = engine.Factory
	// SinkRegistry is an ordered list of sink factories.
	SinkRegistry = engine.Registry
)

// Trace stream names, as SinkSet.Attach targets and trace file suffixes.
const (
	StreamSRAMReadIfmap  = engine.SRAMReadIfmap
	StreamSRAMReadFilter = engine.SRAMReadFilter
	StreamSRAMWriteOfmap = engine.SRAMWriteOfmap
	StreamDRAMRead       = engine.DRAMRead
	StreamDRAMWrite      = engine.DRAMWrite
)

// TraceStreams lists every stream in canonical order.
func TraceStreams() []TraceStream { return append([]TraceStream(nil), engine.Streams...) }

// CSVTraceSink returns a factory that writes each layer's selected streams
// (default: all) as CSV files under dir — the factory behind
// Options.TraceDir, exposed for custom registries.
func CSVTraceSink(dir string, streams ...TraceStream) SinkFactory {
	return engine.CSVTrace(dir, streams...)
}

// ExpandTraceRuns appends every address of a run list onto dst in order —
// the bridge for custom sinks that want run-form events as flat addresses.
func ExpandTraceRuns(runs []TraceRun, dst []int64) []int64 {
	return trace.ExpandRuns(runs, dst)
}

// Analytical-model types.
type (
	// Mapping is a workload's spatio-temporal shape (S_R, S_C, T).
	Mapping = dataflow.Mapping
	// Shape is a systolic array's dimensions.
	Shape = analytical.Shape
	// Partitioning is a scale-out grid.
	Partitioning = analytical.Partitioning
	// SystemConfig is one point of the scaling design space.
	SystemConfig = analytical.SystemConfig
	// Eval is an analytically evaluated configuration.
	Eval = analytical.Eval
	// Workload names a mapping for multi-workload optimization.
	Workload = analytical.Workload
	// ParetoResult is the Sec. IV-B selection outcome.
	ParetoResult = analytical.ParetoResult
	// ScaleOutSpec describes a partitioned system for cycle-accurate runs.
	ScaleOutSpec = partition.Spec
	// ScaleOutResult is a cycle-accurate scale-out run summary.
	ScaleOutResult = partition.Result
	// ScaleOutOptions tunes cycle-accurate scale-out runs.
	ScaleOutOptions = partition.Options
	// NoCConfig parameterizes the scale-out mesh interconnect model.
	NoCConfig = noc.Config
	// NoCReport is the interconnect analysis of a scale-out run.
	NoCReport = noc.Report
)

// NewConfig returns the default configuration (32x32 array, OS dataflow,
// 512/512/256 KiB SRAM).
func NewConfig() Config { return config.New() }

// LoadConfig reads a SCALE-Sim configuration file.
func LoadConfig(path string) (Config, error) { return config.Load(path) }

// ParseDataflow converts "os", "ws" or "is" to a Dataflow.
func ParseDataflow(s string) (Dataflow, error) { return config.ParseDataflow(s) }

// LoadTopology reads a topology CSV file.
func LoadTopology(path string) (Topology, error) { return topology.LoadCSV(path) }

// BuiltInTopology returns a bundled workload: "Resnet50",
// "LanguageModels", "AlexNet", "GoogLeNet", "YoloTiny" or "TinyNet".
func BuiltInTopology(name string) (Topology, bool) { return topology.BuiltIn(name) }

// BuiltInTopologyNames lists the names BuiltInTopology accepts.
func BuiltInTopologyNames() []string { return topology.BuiltInNames() }

// GEMMLayer expresses an M x K by K x N matrix multiplication as a layer.
func GEMMLayer(name string, m, k, n int) Layer { return topology.FromGEMM(name, m, k, n) }

// TensorLayer expresses a rows x cols tensor as a layer shape, for
// vector-unit operator nodes (softmax, layernorm, element-wise).
func TensorLayer(name string, rows, cols int) Layer { return topology.FromTensor(name, rows, cols) }

// ChainGraph lifts a flat topology into a linear-chain operator graph:
// every layer becomes a conv node depending on its predecessor.
func ChainGraph(t Topology) Graph { return topology.ChainGraph(t) }

// LoadGraph reads an operator-graph JSON file (scalesim.graph/v1).
func LoadGraph(path string) (Graph, error) { return topology.LoadGraph(path) }

// WriteGraph writes a graph as indented scalesim.graph/v1 JSON.
func WriteGraph(w io.Writer, g Graph) error { return topology.WriteGraph(w, g) }

// BuiltInGraph returns a bundled operator graph by name — the native
// graphs from BuiltInGraphNames, or any BuiltInTopology name lifted
// through ChainGraph.
func BuiltInGraph(name string) (Graph, error) { return topology.BuiltInGraph(name) }

// BuiltInGraphNames lists the native operator-graph workloads
// ("BERTTiny", "BERTBase").
func BuiltInGraphNames() []string { return topology.BuiltInGraphNames() }

// BERTEncoder builds one transformer encoder block (QKV projections,
// per-head attention, softmax, residuals, layernorms, FFN) as an
// operator graph.
func BERTEncoder(name string, c BERTConfig) (Graph, error) { return topology.BERTEncoder(name, c) }

// GoogLeNetCells returns the parallel-branch structure of GoogLeNet's nine
// inception modules, for cell-level schedulers (package pipeline).
func GoogLeNetCells() map[string][][]string { return topology.GoogLeNetCellBranches() }

// Observability types: attach a Metrics recorder through Options.Obs (or
// the ScaleOutOptions / sweep-spec equivalents) to collect phase timings,
// engine spans and runtime stats, then snapshot them as a Manifest.
// Instrumentation is purely additive — results and traces are
// byte-identical with or without a recorder, and a nil recorder costs
// nothing.
type (
	// Metrics records counters, gauges, timing histograms, phases and
	// engine spans for one run.
	Metrics = obsv.Recorder
	// Manifest is the machine-readable summary of an instrumented run.
	Manifest = obsv.Manifest
	// Progress reports live per-unit completion to a writer.
	Progress = obsv.Progress
)

// Cycle-accounting types: every simulated cycle of a run attributed to an
// exhaustive taxonomy (MAC-active, fold ramp/drain, DRAM-bandwidth stall,
// vector passes, partition skew), with sum(bins) == total enforced per
// unit. Simulator.CycleReport assembles a run's report; the report
// renders as ledgers, a pprof profile over simulated cycles
// (CycleReport.WritePprof) or per-layer roofline rows.
type (
	// CycleLedger is one unit's cycle account (total + bins).
	CycleLedger = cycleacct.Ledger
	// CycleBin is one (phase, category) cell of a ledger.
	CycleBin = cycleacct.Bin
	// CycleNodeLedger is one layer/node's account, with per-partition
	// detail for scale-out runs.
	CycleNodeLedger = cycleacct.NodeLedger
	// CycleReport is a whole run's account plus its roofline rows.
	CycleReport = cycleacct.Report
	// RooflineRow locates one layer on the roofline: operational
	// intensity versus achieved and attainable throughput.
	RooflineRow = cycleacct.RooflineRow
)

// CycleCategories lists the cycle-accounting taxonomy in canonical order.
func CycleCategories() []string { return cycleacct.Categories() }

// NewCycleReport assembles and validates a run's cycle report from node
// ledgers — the path for callers that aggregate their own nodes (the
// scale-out CLI); Simulator.CycleReport covers ordinary runs.
func NewCycleReport(nodes []CycleNodeLedger) (*CycleReport, error) {
	return cycleacct.NewReport(nodes)
}

// NewRooflineRow characterizes one unit on the roofline. cycles is the
// stalled runtime; linkWordsPerCycle zero means an unbounded link.
func NewRooflineRow(name, op string, ops, dramBytes, cycles int64,
	peakOpsPerCycle, linkWordsPerCycle float64, wordBytes int64) RooflineRow {
	return cycleacct.NewRooflineRow(name, op, ops, dramBytes, cycles,
		peakOpsPerCycle, linkWordsPerCycle, wordBytes)
}

// WriteRooflineCSV writes roofline rows as CSV.
func WriteRooflineCSV(w io.Writer, rows []RooflineRow) error {
	return cycleacct.WriteRooflineCSV(w, rows)
}

// Timeline types: attach a TimelineWriter through Options.Timeline (or
// the ScaleOutOptions / sweep-spec equivalents) to export the run as
// Chrome Trace Event JSON — per-layer and per-fold spans, stall
// intervals and windowed bandwidth counters on the simulated-cycle axis,
// plus the engine's scheduler spans on the host wall-clock axis. View the
// output in Perfetto (ui.perfetto.dev) or chrome://tracing.
type (
	// TimelineWriter streams Chrome Trace Event JSON.
	TimelineWriter = timeline.Writer
	// TimelineOptions tunes the export (counter window).
	TimelineOptions = timeline.Options
)

// NewTimeline wraps w in a timeline writer for Options.Timeline. Call
// Close after the run to terminate the JSON array and flush.
func NewTimeline(w io.Writer, opt TimelineOptions) *TimelineWriter { return timeline.New(w, opt) }

// NewMetrics returns an enabled metrics recorder for Options.Obs.
func NewMetrics() *Metrics { return obsv.NewRecorder() }

// NewProgress returns a progress reporter for Options.Progress; lines are
// prefixed with label.
func NewProgress(w io.Writer, label string) *Progress { return obsv.NewProgress(w, label) }

// NewSimulator builds a cycle-accurate simulator for the configuration.
func NewSimulator(cfg Config, opt Options) (*Simulator, error) { return core.New(cfg, opt) }

// Cache memoizes pure per-layer compute results under canonical keys
// (config hash x layer shape x memory/DRAM bounds). Attach one through
// Options.Cache (or the ScaleOutOptions / sweep-spec equivalents): layers
// whose identity was already simulated replay their recorded cycles,
// traffic, stall and DRAM statistics, byte-identical to a live run. One
// cache may be shared across simulators, sweeps and goroutines. Any
// option demanding a live per-layer consumer (trace files, timelines,
// custom sinks, shared DRAM consumers) bypasses the cache automatically.
type Cache = simcache.Cache

// CacheStats snapshots a cache's hit/miss counters.
type CacheStats = simcache.Stats

// NewCache returns an empty in-memory result cache.
func NewCache() *Cache { return simcache.New() }

// NewDiskCache returns a result cache persisted under dir: entries spill
// to JSON files and later processes (or runs) reload them on miss.
func NewDiskCache(dir string) (*Cache, error) { return simcache.NewDisk(dir) }

// NewDiskLRUCache returns a disk-backed result cache whose on-disk tier
// is capped at maxBytes: when a new entry pushes the tier over the cap,
// the least-recently-used entries are evicted (the most recent entry is
// never evicted). maxBytes <= 0 means uncapped, identical to
// NewDiskCache.
func NewDiskLRUCache(dir string, maxBytes int64) (*Cache, error) {
	return simcache.NewDiskLRU(dir, maxBytes)
}

// Job-orchestration types: the submit/status/cancel layer shared by the
// scalesim and scalesweep CLIs and the scalesimd daemon. A JobSpec is a
// pure value — config plus workload plus bounds, canonically keyed — so
// it travels over the wire (JobRequest is its JSON form); a JobRunner
// executes specs on a persistent bounded worker pool behind an admission
// queue, sharing one result cache across all jobs.
type (
	// Job is one tracked execution of a spec (or sweep) on a runner.
	Job = job.Job
	// JobSpec fully describes a simulation job (config, workload, bounds).
	JobSpec = job.Spec
	// JobRequest is the wire (JSON) form of a job submission.
	JobRequest = job.Request
	// JobResult is a completed job's output: run + manifest, or sweep rows.
	JobResult = job.Result
	// JobRunner executes jobs on a shared pool behind an admission queue.
	JobRunner = job.Runner
	// JobOptions configures a runner (workers, queue depth, cache, store).
	JobOptions = job.Options
	// JobLive carries per-submission live consumers (progress, timeline,
	// traces, sinks) that a wire spec deliberately excludes.
	JobLive = job.Live
	// JobInfo is a JSON-friendly snapshot of a job's state.
	JobInfo = job.Info
	// JobStatus is a job's lifecycle state.
	JobStatus = job.Status
)

// Job lifecycle states.
const (
	JobQueued    = job.StatusQueued
	JobRunning   = job.StatusRunning
	JobDone      = job.StatusDone
	JobFailed    = job.StatusFailed
	JobCancelled = job.StatusCancelled
)

// Job-orchestration errors.
var (
	// ErrJobQueueFull is returned by JobRunner.Submit when the admission
	// queue is at capacity (the daemon's HTTP 429).
	ErrJobQueueFull = job.ErrQueueFull
	// ErrJobRunnerClosed is returned by submissions during shutdown.
	ErrJobRunnerClosed = job.ErrClosed
	// ErrJobNotFound is returned for unknown job IDs.
	ErrJobNotFound = job.ErrNotFound
)

// NewJobRunner starts a job runner with its worker pool. Close it to
// drain.
func NewJobRunner(opt JobOptions) *JobRunner { return job.NewRunner(opt) }

// DDR3 returns the default DRAM timing parameters.
func DDR3() DRAMConfig { return dram.DDR3() }

// EyerissEnergy returns the default normalized energy model (1/6/200).
func EyerissEnergy() EnergyModel { return energy.Eyeriss() }

// DefaultNoC returns the default mesh interconnect cost model (one word
// per cycle per link, unit hop energy).
func DefaultNoC() NoCConfig { return noc.Default() }

// Map computes a layer's (S_R, S_C, T) under a dataflow (Table III).
func Map(l Layer, df Dataflow) Mapping { return dataflow.Map(l, df) }

// Runtime is Eq. 4: the stall-free runtime of a mapping on an R x C array.
func Runtime(m Mapping, r, c int64) int64 { return analytical.Runtime(m, r, c) }

// ScaleOutRuntime is Eq. 6: the runtime of a Pr x Pc grid of R x C arrays.
func ScaleOutRuntime(m Mapping, pr, pc, r, c int64) int64 {
	return analytical.ScaleOutRuntime(m, pr, pc, r, c)
}

// BestScaleUp finds the fastest monolithic array shape for a MAC budget.
func BestScaleUp(m Mapping, macs, minDim int64) (Eval, bool) {
	return analytical.BestScaleUp(m, macs, minDim)
}

// BestScaleOut finds the fastest partitioned configuration for a MAC budget.
func BestScaleOut(m Mapping, macs, minDim, maxParts int64) (Eval, bool) {
	return analytical.BestScaleOut(m, macs, minDim, maxParts)
}

// ParetoSearch picks the configuration minimizing total runtime across
// workloads (Sec. IV-B).
func ParetoSearch(ws []Workload, macs, minDim, maxParts int64, scaleOut bool) (ParetoResult, error) {
	return analytical.ParetoSearch(ws, macs, minDim, maxParts, scaleOut)
}

// RunScaleOut executes a layer cycle-accurately on a partitioned system.
func RunScaleOut(l Layer, base Config, spec ScaleOutSpec, opt ScaleOutOptions) (ScaleOutResult, error) {
	return partition.Run(l, base, spec, opt)
}

// ScaleOutSweep runs a layer across several partition counts of one MAC
// budget, picking the best grid and array shape for each count.
func ScaleOutSweep(l Layer, base Config, totalMACs int64, partCounts []int64, minDim int64, opt ScaleOutOptions) ([]ScaleOutResult, error) {
	return partition.Sweep(l, base, totalMACs, partCounts, minDim, opt)
}

// SweetSpot picks the fastest partitioning of a MAC budget whose average
// DRAM bandwidth demand fits the given budget (bytes/cycle) — the paper's
// "sweet spot" at the intersection of the runtime and bandwidth curves. The
// full sweep is returned alongside for reporting.
func SweetSpot(l Layer, base Config, totalMACs int64, partCounts []int64, minDim int64, bwBudget float64, opt ScaleOutOptions) (ScaleOutResult, []ScaleOutResult, error) {
	return partition.SweetSpot(l, base, totalMACs, partCounts, minDim, bwBudget, opt)
}
