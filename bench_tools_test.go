// Benchmarks for the analysis and orchestration tooling built around the
// simulator: the reuse profiler, the batch sweep runner, the NoC analysis,
// the stall analyzer, and the chart renderer.
package scalesim_test

import (
	"math/rand"
	"testing"

	"scalesim/internal/batch"
	"scalesim/internal/config"
	"scalesim/internal/noc"
	"scalesim/internal/systolic"
	"scalesim/internal/topology"
	"scalesim/internal/trace"
	"scalesim/internal/tracetools"
	"scalesim/internal/viz"
)

// BenchmarkReuseProfiler measures Mattson stack-distance profiling over a
// real layer trace.
func BenchmarkReuseProfiler(b *testing.B) {
	l := benchLayer()
	cfg := config.New().WithArray(32, 32)
	var total int64
	for i := 0; i < b.N; i++ {
		p := tracetools.NewReuseProfiler()
		if _, err := systolic.Run(l, cfg, systolic.Sinks{IfmapRead: p}); err != nil {
			b.Fatal(err)
		}
		total = p.Total()
	}
	b.ReportMetric(float64(total), "accesses")
}

// BenchmarkBatchSweep measures a 2x2x1 design-space grid end to end.
func BenchmarkBatchSweep(b *testing.B) {
	spec := batch.Spec{
		Base:       config.New(),
		Arrays:     [][2]int{{16, 16}, {32, 32}},
		Dataflows:  []config.Dataflow{config.OutputStationary, config.WeightStationary},
		SRAMs:      [][3]int{{8, 8, 4}},
		Topologies: []topology.Topology{topology.TinyNet()},
	}
	for i := 0; i < b.N; i++ {
		rows, err := batch.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("grid size")
		}
	}
}

// BenchmarkNoCAnalyze measures link-exact mesh analysis for a 16x16 grid.
func BenchmarkNoCAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var traffic []noc.Traffic
	for i := int64(0); i < 16; i++ {
		for j := int64(0); j < 16; j++ {
			traffic = append(traffic, noc.Traffic{Pi: i, Pj: j, Words: rng.Int63n(1 << 20)})
		}
	}
	cfg := noc.Default()
	for i := 0; i < b.N; i++ {
		if _, err := noc.Analyze(16, 16, traffic, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStallAnalyzer measures demand-lag accounting over a dense trace.
func BenchmarkStallAnalyzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := trace.NewStallAnalyzer(2)
		for c := int64(0); c < 100_000; c++ {
			s.Add(c, 1+c%7)
		}
		if s.StallCycles() == 0 {
			b.Fatal("expected stalls")
		}
	}
}

// BenchmarkVizRender measures ASCII chart rendering.
func BenchmarkVizRender(b *testing.B) {
	s := viz.Series{Name: "r"}
	for i := 0; i < 200; i++ {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, float64((i%17)+1))
	}
	chart := viz.Chart{LogX: true, Width: 72, Height: 20}
	for i := 0; i < b.N; i++ {
		if _, err := chart.Render(s); err != nil {
			b.Fatal(err)
		}
	}
}
