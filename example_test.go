package scalesim_test

import (
	"fmt"

	"scalesim"
)

// ExampleNewSimulator runs a tiny network end to end and prints the
// stall-free runtime, which matches the analytical model exactly.
func ExampleNewSimulator() {
	cfg := scalesim.NewConfig().WithArray(16, 16).WithSRAM(32, 32, 16)
	topo, _ := scalesim.BuiltInTopology("TinyNet")
	sim, _ := scalesim.NewSimulator(cfg, scalesim.Options{})
	run, _ := sim.Simulate(topo)

	var analytic int64
	for _, l := range topo.Layers {
		m := scalesim.Map(l, cfg.Dataflow)
		analytic += scalesim.Runtime(m, 16, 16)
	}
	fmt.Println(run.TotalCycles == analytic)
	// Output: true
}

// ExampleRuntime evaluates Eq. 4 for a GEMM on two array shapes.
func ExampleRuntime() {
	m := scalesim.Map(scalesim.GEMMLayer("g", 64, 32, 64), scalesim.OutputStationary)
	fmt.Println(scalesim.Runtime(m, 64, 64)) // exact fit: Eq. 1
	fmt.Println(scalesim.Runtime(m, 32, 32)) // 2x2 folds
	// Output:
	// 222
	// 504
}

// ExampleBestScaleOut compares the best monolithic and partitioned designs
// for a fixed MAC budget.
func ExampleBestScaleOut() {
	m := scalesim.Map(scalesim.GEMMLayer("tf0", 31999, 84, 1024), scalesim.OutputStationary)
	up, _ := scalesim.BestScaleUp(m, 1<<14, 8)
	out, _ := scalesim.BestScaleOut(m, 1<<14, 8, 0)
	fmt.Println(up.Cycles > out.Cycles)
	// Output: true
}

// ExampleMap shows the Table III mapping of one convolution layer under
// the three dataflows.
func ExampleMap() {
	l := scalesim.Layer{Name: "conv", IfmapH: 8, IfmapW: 8, FilterH: 3,
		FilterW: 3, Channels: 4, NumFilters: 6, Stride: 1}
	for _, df := range []scalesim.Dataflow{
		scalesim.OutputStationary, scalesim.WeightStationary, scalesim.InputStationary,
	} {
		m := scalesim.Map(l, df)
		fmt.Printf("%s: Sr=%d Sc=%d T=%d\n", df, m.Sr, m.Sc, m.T)
	}
	// Output:
	// os: Sr=36 Sc=6 T=36
	// ws: Sr=36 Sc=6 T=36
	// is: Sr=36 Sc=36 T=6
}
